//! The credits realization: demand-proportional capacity shares.
//!
//! From §2.2: "we develop a credits strategy where clients report their
//! demands at measurement intervals and are assigned credits (i.e., shares
//! of server capacity) proportionally to demands via a logically-
//! centralized controller; once demand exceeds server capacity, a
//! congestion signal is sent to the controller and the credits allocations
//! are adapted accordingly at 1s intervals."
//!
//! Mechanics (our realization; recorded in DESIGN.md §5.4):
//!
//! * Clients report per-server demand *rates* every measurement interval
//!   (100 ms default).
//! * Every adaptation interval (1 s), the controller grants each client a
//!   credit *rate* per server: the server's usable capacity split
//!   proportionally to reported demands, with a headroom multiplier so
//!   demand can grow, and a per-client floor so idle clients can probe.
//! * A congested server (signal raised since the last epoch) has its
//!   usable capacity scaled down multiplicatively; calm servers recover
//!   multiplicatively toward full capacity — AIMD-flavored, as hinted by
//!   "adapted accordingly".
//! * Clients enforce their grants with token buckets ([`CreditBucket`]):
//!   a request may be dispatched to server *s* only by spending a token
//!   from the bucket for *s*; otherwise it waits in the client's local
//!   priority queue (that wait is part of task latency).

use crate::priority::Priority;
use brb_store::ids::{ClientId, ServerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Grant rates for one adaptation epoch: per server, the granted
/// requests/second of every reporting client, **sorted by client id**.
///
/// The sorted dense layout replaces the old `Vec<HashMap<ClientId, f64>>`
/// for two reasons recorded in ROADMAP's open items: iteration order (and
/// therefore every f64 summation the engine derives from a table) is
/// deterministic, and the table can be **pooled** —
/// [`CreditController::allocate_into`] refills a caller-owned table
/// without allocating once its vectors are warm.
#[derive(Debug, Clone, Default)]
pub struct GrantTable {
    per_server: Vec<Vec<(ClientId, f64)>>,
}

impl GrantTable {
    /// An empty table (fills on the first [`CreditController::allocate_into`]).
    pub fn new() -> Self {
        GrantTable::default()
    }

    /// Number of servers covered by the table.
    pub fn num_servers(&self) -> usize {
        self.per_server.len()
    }

    /// The `(client, rate)` grants of one server, sorted by client id.
    pub fn server(&self, server: ServerId) -> &[(ClientId, f64)] {
        &self.per_server[server.index()]
    }

    /// Grant rows in server order: `(server index, sorted grants)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[(ClientId, f64)])> {
        self.per_server
            .iter()
            .enumerate()
            .map(|(s, g)| (s, g.as_slice()))
    }

    /// The rate granted to `client` at `server`, if the client reported.
    pub fn rate(&self, server: ServerId, client: ClientId) -> Option<f64> {
        let grants = self.per_server.get(server.index())?;
        grants
            .binary_search_by_key(&client, |&(c, _)| c)
            .ok()
            .map(|i| grants[i].1)
    }

    /// Sum of granted rates at one server.
    pub fn total_rate(&self, server: ServerId) -> f64 {
        self.per_server[server.index()]
            .iter()
            .map(|&(_, r)| r)
            .sum()
    }

    /// Clears all rows, keeping their capacity, and sizes the table for
    /// `num_servers` rows.
    fn reset(&mut self, num_servers: usize) {
        for row in &mut self.per_server {
            row.clear();
        }
        self.per_server.resize_with(num_servers, Vec::new);
    }
}

/// Controller tuning.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CreditsConfig {
    /// How often clients report demand, nanoseconds (paper: "measurement
    /// intervals"; we default to 100 ms).
    pub measurement_interval_ns: u64,
    /// How often allocations adapt, nanoseconds (paper: 1 s).
    pub adaptation_interval_ns: u64,
    /// Multiplicative decrease applied to a congested server's usable
    /// capacity.
    pub backoff: f64,
    /// Multiplicative recovery toward full capacity when calm.
    pub recovery: f64,
    /// Floor on the usable-capacity scale. Must stay above the offered
    /// load fraction or sustained backoff makes client backlogs diverge
    /// (grants below arrival rate can never drain a queue).
    pub min_scale: f64,
    /// Grant headroom: grants = demand-share × headroom (≥ 1) so clients
    /// can ramp up between epochs.
    pub headroom: f64,
    /// Minimum grant rate (requests/s) per (client, server) so every
    /// client can always probe every server.
    pub min_rate: f64,
    /// Token-bucket burst, in seconds of granted rate.
    pub burst_secs: f64,
}

impl Default for CreditsConfig {
    fn default() -> Self {
        CreditsConfig {
            measurement_interval_ns: 100_000_000,  // 100 ms
            adaptation_interval_ns: 1_000_000_000, // 1 s (paper)
            backoff: 0.9,
            recovery: 1.25,
            min_scale: 0.8,
            headroom: 1.3,
            min_rate: 10.0,
            burst_secs: 0.1,
        }
    }
}

impl CreditsConfig {
    /// Validates tuning invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.measurement_interval_ns == 0 || self.adaptation_interval_ns == 0 {
            return Err("intervals must be positive".into());
        }
        if !(0.0 < self.backoff && self.backoff < 1.0) {
            return Err(format!("backoff must be in (0,1): {}", self.backoff));
        }
        if self.recovery < 1.0 {
            return Err(format!("recovery must be >= 1: {}", self.recovery));
        }
        if !(0.0 < self.min_scale && self.min_scale <= 1.0) {
            return Err(format!("min_scale must be in (0,1]: {}", self.min_scale));
        }
        if self.headroom < 1.0 {
            return Err(format!("headroom must be >= 1: {}", self.headroom));
        }
        if self.min_rate < 0.0 || self.burst_secs <= 0.0 {
            return Err("min_rate must be >= 0 and burst_secs > 0".into());
        }
        Ok(())
    }
}

/// The logically-centralized credit controller.
#[derive(Debug, Clone)]
pub struct CreditController {
    config: CreditsConfig,
    /// Full capacity of each server (requests/s).
    capacities: Vec<f64>,
    /// Latest reported demand rate per server per client, **sorted by
    /// client id** — dense pairs instead of a hash map, so demand sums
    /// run in one deterministic order and epoch allocation is
    /// allocation-free once the rows are warm.
    demands: Vec<Vec<(ClientId, f64)>>,
    /// Usable-capacity scale per server, in (0, 1].
    scales: Vec<f64>,
    /// Congestion signals received since the last adaptation.
    congested: Vec<bool>,
    epochs: u64,
}

impl CreditController {
    /// Creates a controller for servers with the given full capacities
    /// (requests/second each).
    ///
    /// # Panics
    /// Panics if the config is invalid or any capacity is non-positive.
    pub fn new(capacities: Vec<f64>, config: CreditsConfig) -> Self {
        config.validate().expect("invalid credits config");
        assert!(!capacities.is_empty(), "need at least one server");
        assert!(
            capacities.iter().all(|&c| c > 0.0),
            "capacities must be positive"
        );
        let n = capacities.len();
        CreditController {
            config,
            capacities,
            demands: vec![Vec::new(); n],
            scales: vec![1.0; n],
            congested: vec![false; n],
            epochs: 0,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &CreditsConfig {
        &self.config
    }

    /// Records a demand report: `client` wants `rate_rps` requests/second
    /// of `server`. Overwrites the client's previous report for that
    /// server (reports are absolute, not deltas).
    pub fn report_demand(&mut self, client: ClientId, server: ServerId, rate_rps: f64) {
        let s = server.index();
        assert!(s < self.capacities.len(), "unknown server {server}");
        let row = &mut self.demands[s];
        match row.binary_search_by_key(&client, |&(c, _)| c) {
            Ok(i) => row[i].1 = rate_rps.max(0.0),
            Err(i) => row.insert(i, (client, rate_rps.max(0.0))),
        }
    }

    /// Records a congestion signal from `server` ("once demand exceeds
    /// server capacity, a congestion signal is sent to the controller").
    pub fn signal_congestion(&mut self, server: ServerId) {
        let s = server.index();
        assert!(s < self.capacities.len(), "unknown server {server}");
        self.congested[s] = true;
    }

    /// Usable-capacity scale of a server (diagnostics).
    pub fn scale_of(&self, server: ServerId) -> f64 {
        self.scales[server.index()]
    }

    /// Number of adaptation epochs completed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Runs one adaptation epoch into a caller-pooled table: updates
    /// per-server scales from congestion state and refills `grants`
    /// in place — the steady-state tick allocates nothing once the
    /// table's rows have warmed to the client population. Congestion
    /// flags reset; demand reports persist until overwritten.
    pub fn allocate_into(&mut self, grants: &mut GrantTable) {
        grants.reset(self.capacities.len());
        for s in 0..self.capacities.len() {
            // AIMD-flavored usable capacity.
            if self.congested[s] {
                self.scales[s] = (self.scales[s] * self.config.backoff).max(self.config.min_scale);
            } else {
                self.scales[s] = (self.scales[s] * self.config.recovery).min(1.0);
            }
            self.congested[s] = false;

            let total_demand: f64 = self.demands[s].iter().map(|&(_, d)| d).sum();
            // Backoff exists to spread transient hot spots, not to cap
            // throughput: never throttle usable capacity below demand
            // pressure, or sustained high load (demand ≈ capacity) makes
            // client backlogs diverge — grants below the arrival rate can
            // never drain a queue.
            let pressure = (total_demand / self.capacities[s]).min(1.0);
            let usable = self.capacities[s] * self.scales[s].max(pressure);
            let row = &mut grants.per_server[s];
            for &(client, demand) in &self.demands[s] {
                let share = if total_demand <= usable {
                    // Uncontended: grant demand plus headroom.
                    demand * self.config.headroom
                } else {
                    // Contended: proportional share of usable capacity.
                    usable * demand / total_demand
                };
                // Demands are sorted by client id, so pushing in order
                // keeps the row sorted.
                row.push((client, share.max(self.config.min_rate)));
            }
        }
        self.epochs += 1;
    }

    /// [`Self::allocate_into`] into a fresh table — the convenience form
    /// for tests and cold paths.
    pub fn allocate(&mut self) -> GrantTable {
        let mut grants = GrantTable::new();
        self.allocate_into(&mut grants);
        grants
    }
}

/// A client-side token bucket enforcing one server's grant rate.
#[derive(Debug, Clone, Copy)]
pub struct CreditBucket {
    rate_rps: f64,
    burst: f64,
    tokens: f64,
    last_refill_ns: u64,
}

impl CreditBucket {
    /// Creates a bucket with the given rate and burst (tokens), starting
    /// full.
    pub fn new(rate_rps: f64, burst: f64) -> Self {
        let burst = burst.max(1.0);
        CreditBucket {
            rate_rps: rate_rps.max(0.0),
            burst,
            tokens: burst,
            last_refill_ns: 0,
        }
    }

    /// Applies a new grant rate (at an adaptation epoch). The burst is
    /// re-derived from the rate and `burst_secs`; accumulated tokens are
    /// clamped to the new burst.
    pub fn set_rate(&mut self, now_ns: u64, rate_rps: f64, burst_secs: f64) {
        self.refill(now_ns);
        self.rate_rps = rate_rps.max(0.0);
        self.burst = (self.rate_rps * burst_secs).max(1.0);
        self.tokens = self.tokens.min(self.burst);
    }

    fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_refill_ns {
            let dt = (now_ns - self.last_refill_ns) as f64 / 1e9;
            self.tokens = (self.tokens + self.rate_rps * dt).min(self.burst);
            self.last_refill_ns = now_ns;
        }
    }

    /// Attempts to spend one token at time `now_ns`.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens available at `now_ns` (after refill).
    pub fn tokens_at(&mut self, now_ns: u64) -> f64 {
        self.refill(now_ns);
        self.tokens
    }

    /// Nanoseconds until one token accrues (0 if available now;
    /// `u64::MAX` if the rate is zero).
    pub fn ns_until_token(&mut self, now_ns: u64) -> u64 {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            0
        } else if self.rate_rps <= 0.0 {
            u64::MAX
        } else {
            let deficit = 1.0 - self.tokens;
            (deficit / self.rate_rps * 1e9).ceil() as u64
        }
    }

    /// The current grant rate.
    pub fn rate(&self) -> f64 {
        self.rate_rps
    }
}

/// Bookkeeping helper: a client's local holding queue while it waits for
/// credits, keyed by server. Entries keep their task priority so the
/// highest-priority request dispatches first once tokens arrive.
#[derive(Debug, Default)]
pub struct HoldQueue<T> {
    by_server: BTreeMap<ServerId, crate::queue::PriorityQueue<T>>,
    len: usize,
}

impl<T> HoldQueue<T> {
    /// Creates an empty hold queue.
    pub fn new() -> Self {
        HoldQueue {
            by_server: BTreeMap::new(),
            len: 0,
        }
    }

    /// Holds `item` destined for `server`.
    pub fn hold(&mut self, server: ServerId, priority: Priority, item: T) {
        use crate::queue::RequestQueue;
        self.by_server
            .entry(server)
            .or_insert_with(crate::queue::PriorityQueue::new)
            .push(priority, item);
        self.len += 1;
    }

    /// Releases the highest-priority held item for `server`, if any.
    pub fn release(&mut self, server: ServerId) -> Option<(Priority, T)> {
        use crate::queue::RequestQueue;
        let q = self.by_server.get_mut(&server)?;
        let out = q.pop();
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Held items destined for `server`.
    pub fn held_for(&self, server: ServerId) -> usize {
        use crate::queue::RequestQueue;
        self.by_server.get(&server).map_or(0, |q| q.len())
    }

    /// Total held items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(n: usize, cap: f64) -> CreditController {
        CreditController::new(vec![cap; n], CreditsConfig::default())
    }

    #[test]
    fn uncontended_grants_demand_plus_headroom() {
        let mut c = controller(1, 14_000.0);
        let headroom = c.config().headroom;
        c.report_demand(ClientId::new(0), ServerId::new(0), 1_000.0);
        c.report_demand(ClientId::new(1), ServerId::new(0), 2_000.0);
        let g = c.allocate();
        let s0 = ServerId::new(0);
        let g0 = g.rate(s0, ClientId::new(0)).unwrap();
        let g1 = g.rate(s0, ClientId::new(1)).unwrap();
        assert!((g0 - 1_000.0 * headroom).abs() < 1e-9);
        assert!((g1 - 2_000.0 * headroom).abs() < 1e-9);
    }

    #[test]
    fn demand_pressure_floors_usable_capacity() {
        // Even after sustained congestion, grants must sum to (at least)
        // capacity when demand saturates it — backoff redistributes load,
        // it must not suppress throughput.
        let mut c = controller(1, 10_000.0);
        c.report_demand(ClientId::new(0), ServerId::new(0), 8_000.0);
        c.report_demand(ClientId::new(1), ServerId::new(0), 4_000.0);
        for _ in 0..20 {
            c.signal_congestion(ServerId::new(0));
            c.allocate();
        }
        c.signal_congestion(ServerId::new(0));
        let g = c.allocate();
        let total = g.total_rate(ServerId::new(0));
        assert!(
            total >= 10_000.0 - 1e-6,
            "grants {total} fell below saturated capacity"
        );
    }

    #[test]
    fn contended_grants_are_proportional_shares() {
        let mut c = controller(1, 10_000.0);
        c.report_demand(ClientId::new(0), ServerId::new(0), 30_000.0);
        c.report_demand(ClientId::new(1), ServerId::new(0), 10_000.0);
        let g = c.allocate();
        let g0 = g.rate(ServerId::new(0), ClientId::new(0)).unwrap();
        let g1 = g.rate(ServerId::new(0), ClientId::new(1)).unwrap();
        // Proportional 3:1 split of capacity.
        assert!((g0 / g1 - 3.0).abs() < 1e-9, "{g0} vs {g1}");
        assert!((g0 + g1 - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn congestion_backs_off_then_recovers() {
        let mut c = controller(1, 10_000.0);
        let backoff = c.config().backoff;
        c.report_demand(ClientId::new(0), ServerId::new(0), 20_000.0);
        c.signal_congestion(ServerId::new(0));
        c.allocate();
        let after_backoff = c.scale_of(ServerId::new(0));
        assert!((after_backoff - backoff).abs() < 1e-9);
        // Calm epochs recover multiplicatively, capped at 1.
        for _ in 0..10 {
            c.allocate();
        }
        assert!((c.scale_of(ServerId::new(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_congestion_floors_at_min_scale() {
        let mut c = controller(1, 10_000.0);
        let floor = c.config().min_scale;
        for _ in 0..50 {
            c.signal_congestion(ServerId::new(0));
            c.allocate();
        }
        let scale = c.scale_of(ServerId::new(0));
        assert!(
            (scale - floor).abs() < 1e-9,
            "scale {scale} vs floor {floor}"
        );
    }

    #[test]
    fn min_rate_floor_applies() {
        let mut c = controller(1, 10_000.0);
        c.report_demand(ClientId::new(0), ServerId::new(0), 0.0);
        let g = c.allocate();
        assert_eq!(g.rate(ServerId::new(0), ClientId::new(0)), Some(10.0));
        // A client that never reported has no grant row entry.
        assert_eq!(g.rate(ServerId::new(0), ClientId::new(9)), None);
    }

    #[test]
    fn grants_conserve_capacity_under_contention() {
        let mut c = controller(3, 14_000.0);
        for client in 0..18u64 {
            for server in 0..3u64 {
                c.report_demand(ClientId::new(client), ServerId::new(server), 5_000.0);
            }
        }
        let g = c.allocate();
        for (s, row) in g.iter() {
            let total: f64 = row.iter().map(|&(_, r)| r).sum();
            // min_rate floors can push slightly above usable capacity, but
            // never above capacity + clients × min_rate.
            assert!(
                total <= 14_000.0 + 18.0 * 10.0 + 1e-6,
                "server {s} total {total}"
            );
        }
    }

    /// `allocate_into` must be a drop-in for `allocate`: refilling a
    /// reused (dirty) table yields exactly the rates a fresh table gets,
    /// with rows sorted by client id.
    #[test]
    fn allocate_into_reuses_table_without_residue() {
        let mut a = controller(2, 10_000.0);
        let mut b = controller(2, 10_000.0);
        let mut pooled = GrantTable::new();
        for epoch in 0..5u64 {
            // Vary the reporting population so rows shrink and grow.
            for client in 0..(2 + epoch % 3) {
                // Out-of-order reports must still produce sorted rows.
                let client = (2 + epoch % 3) - 1 - client;
                for server in 0..2u64 {
                    let rate = 1_000.0 * (client + 1) as f64;
                    a.report_demand(ClientId::new(client), ServerId::new(server), rate);
                    b.report_demand(ClientId::new(client), ServerId::new(server), rate);
                }
            }
            if epoch % 2 == 0 {
                a.signal_congestion(ServerId::new(1));
                b.signal_congestion(ServerId::new(1));
            }
            a.allocate_into(&mut pooled);
            let fresh = b.allocate();
            assert_eq!(pooled.num_servers(), fresh.num_servers());
            for server in 0..2u64 {
                let s = ServerId::new(server);
                assert_eq!(pooled.server(s), fresh.server(s), "epoch {epoch}");
                assert!(
                    pooled.server(s).windows(2).all(|w| w[0].0 < w[1].0),
                    "row not sorted at epoch {epoch}"
                );
            }
        }
        assert_eq!(a.epochs(), 5);
    }

    #[test]
    fn bucket_accrues_and_spends() {
        let mut b = CreditBucket::new(1_000.0, 5.0); // 1 token/ms, burst 5
        assert!(b.try_take(0));
        for _ in 0..4 {
            assert!(b.try_take(0));
        }
        assert!(!b.try_take(0), "burst exhausted");
        // After 2ms, two tokens accrued.
        assert!(b.try_take(2_000_000));
        assert!(b.try_take(2_000_000));
        assert!(!b.try_take(2_000_000));
    }

    #[test]
    fn bucket_burst_caps_accrual() {
        let mut b = CreditBucket::new(1_000.0, 3.0);
        // A long idle period cannot bank more than burst.
        assert!((b.tokens_at(10_000_000_000) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_ns_until_token() {
        let mut b = CreditBucket::new(1_000.0, 1.0);
        assert_eq!(b.ns_until_token(0), 0);
        assert!(b.try_take(0));
        // Next token in 1ms.
        let eta = b.ns_until_token(0);
        assert!((900_000..=1_100_000).contains(&eta), "{eta}");
        let mut zero = CreditBucket::new(0.0, 1.0);
        assert!(zero.try_take(0)); // initial burst token
        assert_eq!(zero.ns_until_token(0), u64::MAX);
    }

    #[test]
    fn set_rate_rescales_burst_and_clamps_tokens() {
        let mut b = CreditBucket::new(10_000.0, 500.0);
        b.set_rate(0, 100.0, 0.05);
        // New burst = 100 × 0.05 = 5; banked tokens clamp down.
        assert!((b.tokens_at(0) - 5.0).abs() < 1e-9);
        assert_eq!(b.rate(), 100.0);
    }

    #[test]
    fn hold_queue_releases_by_priority() {
        let mut h = HoldQueue::new();
        let s = ServerId::new(2);
        h.hold(s, Priority(30), "low");
        h.hold(s, Priority(10), "high");
        h.hold(ServerId::new(1), Priority(1), "other-server");
        assert_eq!(h.len(), 3);
        assert_eq!(h.held_for(s), 2);
        assert_eq!(h.release(s).unwrap().1, "high");
        assert_eq!(h.release(s).unwrap().1, "low");
        assert!(h.release(s).is_none());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn config_validation() {
        let mut c = CreditsConfig::default();
        assert!(c.validate().is_ok());
        c.backoff = 1.5;
        assert!(c.validate().is_err());
        c = CreditsConfig {
            recovery: 0.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = CreditsConfig {
            adaptation_interval_ns: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "unknown server")]
    fn demand_for_unknown_server_panics() {
        let mut c = controller(1, 100.0);
        c.report_demand(ClientId::new(0), ServerId::new(5), 1.0);
    }
}
