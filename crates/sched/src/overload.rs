//! Overload controls: bounded queues with typed enqueue outcomes,
//! admission-control load shedding, and a CoDel-style adaptive
//! queue-management policy.
//!
//! The paper evaluates BRB below saturation only; these pieces let the
//! engine express what production stores do past the knee:
//!
//! * [`QueueBound`] — a tail-drop capacity plus an optional
//!   admission-control watermark (`shed_above`) below it. [`QueueBound::admit`]
//!   returns a typed [`EnqueueOutcome`] so callers distinguish
//!   "enqueued", "tail-dropped at capacity" and "shed by admission
//!   control" instead of silently growing without limit.
//! * [`CoDel`] — the controller of Nichols & Jacobson's CoDel AQM,
//!   adapted to request queues: it watches each dequeued item's
//!   *sojourn time* (enqueue → dequeue) and, once sojourn stays above
//!   `target_ns` for a full `interval_ns`, enters a dropping state that
//!   discards head-of-line items at a cadence that shrinks with the
//!   inverse square root of the drop count — the classic control law
//!   that backs off load proportionally to how persistent the standing
//!   queue is.
//! * [`Bounded`] — a thin wrapper gluing a [`QueueBound`] onto any
//!   [`RequestQueue`] discipline, for callers that own their queue
//!   directly.
//!
//! Everything here is deterministic and allocation-free: decisions are
//! pure functions of queue length, virtual time and the controller's
//! own counters, so simulations with identical seeds drop identical
//! requests.

use crate::priority::Priority;
use crate::queue::RequestQueue;
use serde::{Deserialize, Serialize};

/// Why an enqueue attempt (or an AQM inspection at dequeue) rejected a
/// request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Tail drop: the queue was at capacity.
    QueueFull,
    /// Admission control shed the request at the watermark, before the
    /// queue filled.
    Shed,
    /// The AQM dropped the request at dequeue because its sojourn time
    /// exceeded the target for a sustained interval.
    Sojourn,
}

/// Typed outcome of offering a request to a bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The request was (or may be) enqueued.
    Enqueued,
    /// The request was rejected; the reason says by which mechanism.
    Dropped(DropReason),
}

/// Capacity bound and admission-control watermark for one queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueBound {
    /// Hard capacity: arrivals finding this many queued are tail-dropped.
    pub capacity: usize,
    /// Admission-control watermark: arrivals finding at least this many
    /// queued are shed *before* the queue fills (`None` disables
    /// shedding). Must not exceed `capacity` to be meaningful.
    pub shed_above: Option<usize>,
}

impl QueueBound {
    /// A bound with no shedding watermark.
    pub fn tail_drop(capacity: usize) -> Self {
        QueueBound {
            capacity,
            shed_above: None,
        }
    }

    /// The admission decision for an arrival finding `len` items queued.
    /// Shedding is checked first: a watermark below capacity means the
    /// queue sheds before it ever tail-drops.
    pub fn admit(&self, len: usize) -> EnqueueOutcome {
        if let Some(watermark) = self.shed_above {
            if len >= watermark {
                return EnqueueOutcome::Dropped(DropReason::Shed);
            }
        }
        if len >= self.capacity {
            return EnqueueOutcome::Dropped(DropReason::QueueFull);
        }
        EnqueueOutcome::Enqueued
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("queue capacity must be positive".into());
        }
        if let Some(w) = self.shed_above {
            if w == 0 {
                return Err("shed watermark must be positive".into());
            }
            if w > self.capacity {
                return Err(format!(
                    "shed watermark {w} above capacity {}",
                    self.capacity
                ));
            }
        }
        Ok(())
    }
}

/// CoDel knobs: the sojourn-time target and the observation interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoDelConfig {
    /// Acceptable standing sojourn time (ns). Sojourns below this never
    /// trigger drops.
    pub target_ns: u64,
    /// How long sojourn must stay above target before dropping starts;
    /// also the base of the drop cadence (ns).
    pub interval_ns: u64,
}

impl CoDelConfig {
    /// The canonical CoDel constants: 5 ms target, 100 ms interval.
    pub fn paper_default() -> Self {
        CoDelConfig {
            target_ns: 5_000_000,
            interval_ns: 100_000_000,
        }
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_ns == 0 {
            return Err("CoDel target must be positive".into());
        }
        if self.interval_ns == 0 {
            return Err("CoDel interval must be positive".into());
        }
        Ok(())
    }
}

/// The CoDel drop controller for one queue. Feed it every dequeue via
/// [`CoDel::on_dequeue`]; it answers "drop this one?".
#[derive(Debug, Clone)]
pub struct CoDel {
    cfg: CoDelConfig,
    /// When sojourn first rose above target plus one interval — the
    /// moment dropping may begin. `None` while sojourn is below target.
    first_above_ns: Option<u64>,
    /// Whether the controller is in its dropping state.
    dropping: bool,
    /// Next scheduled drop time while dropping.
    drop_next_ns: u64,
    /// Drops in the current dropping episode (drives the control law).
    drop_count: u32,
    /// Total drops over the controller's lifetime.
    total_dropped: u64,
}

/// The control law: the gap to the next drop shrinks with the inverse
/// square root of the episode's drop count, halving the cadence time
/// after four drops, and so on.
fn control_law(interval_ns: u64, drop_count: u32) -> u64 {
    ((interval_ns as f64 / (drop_count.max(1) as f64).sqrt()) as u64).max(1)
}

impl CoDel {
    /// A fresh controller in the non-dropping state.
    pub fn new(cfg: CoDelConfig) -> Self {
        CoDel {
            cfg,
            first_above_ns: None,
            dropping: false,
            drop_next_ns: 0,
            drop_count: 0,
            total_dropped: 0,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> CoDelConfig {
        self.cfg
    }

    /// Total drops decided over the controller's lifetime.
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Decides the fate of an item dequeued at `now_ns` after waiting
    /// `sojourn_ns` in the queue: `true` means drop it (the caller
    /// should discard it and dequeue the next), `false` means serve it.
    pub fn on_dequeue(&mut self, now_ns: u64, sojourn_ns: u64) -> bool {
        if sojourn_ns < self.cfg.target_ns {
            // Below target: leave the dropping state and rearm.
            self.first_above_ns = None;
            self.dropping = false;
            return false;
        }
        match self.first_above_ns {
            None => {
                // First observation above target: give the queue one full
                // interval to drain on its own.
                self.first_above_ns = Some(now_ns + self.cfg.interval_ns);
                false
            }
            Some(first_above) => {
                if self.dropping {
                    if now_ns >= self.drop_next_ns {
                        self.drop_count += 1;
                        self.total_dropped += 1;
                        self.drop_next_ns =
                            now_ns + control_law(self.cfg.interval_ns, self.drop_count);
                        true
                    } else {
                        false
                    }
                } else if now_ns >= first_above {
                    // Sojourn stayed above target for a whole interval:
                    // enter the dropping state and drop immediately.
                    self.dropping = true;
                    self.drop_count = 1;
                    self.total_dropped += 1;
                    self.drop_next_ns = now_ns + control_law(self.cfg.interval_ns, self.drop_count);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// A queue discipline wrapped with a [`QueueBound`]: `try_push` returns
/// a typed outcome instead of growing without limit.
#[derive(Debug, Clone)]
pub struct Bounded<Q> {
    inner: Q,
    bound: QueueBound,
}

impl<Q> Bounded<Q> {
    /// Wraps `inner` with `bound`.
    pub fn new(inner: Q, bound: QueueBound) -> Self {
        Bounded { inner, bound }
    }

    /// The wrapped bound.
    pub fn bound(&self) -> QueueBound {
        self.bound
    }

    /// Offers `item`; rejections report which mechanism fired.
    pub fn try_push<T>(&mut self, priority: Priority, item: T) -> EnqueueOutcome
    where
        Q: RequestQueue<T>,
    {
        match self.bound.admit(self.inner.len()) {
            EnqueueOutcome::Enqueued => {
                self.inner.push(priority, item);
                EnqueueOutcome::Enqueued
            }
            dropped => dropped,
        }
    }

    /// Dequeues the next item.
    pub fn pop<T>(&mut self) -> Option<(Priority, T)>
    where
        Q: RequestQueue<T>,
    {
        self.inner.pop()
    }

    /// Queued item count.
    pub fn len<T>(&self) -> usize
    where
        Q: RequestQueue<T>,
    {
        self.inner.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty<T>(&self) -> bool
    where
        Q: RequestQueue<T>,
    {
        self.inner.is_empty()
    }
}

impl<Q: Default> Bounded<Q> {
    /// A bounded queue over `Q`'s default construction.
    pub fn with_bound(bound: QueueBound) -> Self {
        Bounded {
            inner: Q::default(),
            bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::FifoQueue;

    #[test]
    fn tail_drop_fires_at_capacity() {
        let bound = QueueBound::tail_drop(2);
        assert_eq!(bound.admit(0), EnqueueOutcome::Enqueued);
        assert_eq!(bound.admit(1), EnqueueOutcome::Enqueued);
        assert_eq!(
            bound.admit(2),
            EnqueueOutcome::Dropped(DropReason::QueueFull)
        );
        assert_eq!(
            bound.admit(100),
            EnqueueOutcome::Dropped(DropReason::QueueFull)
        );
    }

    #[test]
    fn shed_watermark_fires_before_capacity() {
        let bound = QueueBound {
            capacity: 10,
            shed_above: Some(4),
        };
        assert_eq!(bound.admit(3), EnqueueOutcome::Enqueued);
        assert_eq!(bound.admit(4), EnqueueOutcome::Dropped(DropReason::Shed));
        // Shedding masks the tail drop entirely when the watermark is
        // below capacity — by design, admission control acts first.
        assert_eq!(bound.admit(10), EnqueueOutcome::Dropped(DropReason::Shed));
    }

    #[test]
    fn bound_validation_rejects_nonsense() {
        assert!(QueueBound::tail_drop(0).validate().is_err());
        assert!(QueueBound {
            capacity: 4,
            shed_above: Some(5)
        }
        .validate()
        .is_err());
        assert!(QueueBound {
            capacity: 4,
            shed_above: Some(0)
        }
        .validate()
        .is_err());
        assert!(QueueBound {
            capacity: 4,
            shed_above: Some(4)
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn bounded_queue_reports_typed_outcomes() {
        let mut q: Bounded<FifoQueue<u32>> = Bounded::with_bound(QueueBound {
            capacity: 2,
            shed_above: None,
        });
        assert_eq!(q.try_push(Priority(1), 10), EnqueueOutcome::Enqueued);
        assert_eq!(q.try_push(Priority(1), 11), EnqueueOutcome::Enqueued);
        assert_eq!(
            q.try_push(Priority(1), 12),
            EnqueueOutcome::Dropped(DropReason::QueueFull)
        );
        assert_eq!(q.len::<u32>(), 2);
        assert_eq!(q.pop::<u32>().unwrap().1, 10);
        assert_eq!(q.try_push(Priority(1), 12), EnqueueOutcome::Enqueued);
    }

    #[test]
    fn codel_never_drops_below_target() {
        let mut c = CoDel::new(CoDelConfig {
            target_ns: 5_000_000,
            interval_ns: 100_000_000,
        });
        let mut now = 0;
        for _ in 0..1_000 {
            now += 1_000_000;
            assert!(!c.on_dequeue(now, 4_999_999));
        }
        assert_eq!(c.total_dropped(), 0);
    }

    #[test]
    fn codel_waits_one_interval_then_drops() {
        let cfg = CoDelConfig {
            target_ns: 5_000_000,
            interval_ns: 100_000_000,
        };
        let mut c = CoDel::new(cfg);
        // Sojourn rises above target at t=0: no drop for one interval.
        assert!(!c.on_dequeue(0, 10_000_000));
        assert!(!c.on_dequeue(50_000_000, 10_000_000));
        // A full interval above target: dropping starts.
        assert!(c.on_dequeue(100_000_000, 10_000_000));
    }

    #[test]
    fn codel_drop_cadence_shrinks_with_inverse_sqrt() {
        assert_eq!(control_law(100, 1), 100);
        assert_eq!(control_law(100, 4), 50);
        assert_eq!(control_law(100, 16), 25);
        // Never zero, even at absurd counts.
        assert_eq!(control_law(1, u32::MAX), 1);
    }

    #[test]
    fn codel_sustained_overload_drops_faster_and_faster() {
        let cfg = CoDelConfig {
            target_ns: 1_000,
            interval_ns: 1_000_000,
        };
        let mut c = CoDel::new(cfg);
        let mut now = 0u64;
        let mut drop_times = Vec::new();
        // Inspect a dequeue every 10µs with sojourn stuck above target.
        for _ in 0..2_000 {
            now += 10_000;
            if c.on_dequeue(now, 50_000) {
                drop_times.push(now);
            }
        }
        assert!(drop_times.len() >= 4, "only {} drops", drop_times.len());
        // Gaps between consecutive drops must not grow: the control law
        // tightens the cadence as the episode persists.
        let gaps: Vec<u64> = drop_times.windows(2).map(|w| w[1] - w[0]).collect();
        for w in gaps.windows(2) {
            assert!(w[1] <= w[0], "drop cadence widened: {gaps:?}");
        }
        assert_eq!(c.total_dropped(), drop_times.len() as u64);
    }

    #[test]
    fn codel_recovers_when_queue_drains() {
        let cfg = CoDelConfig {
            target_ns: 1_000,
            interval_ns: 1_000_000,
        };
        let mut c = CoDel::new(cfg);
        let mut now = 0u64;
        let mut dropped_any = false;
        for _ in 0..500 {
            now += 10_000;
            dropped_any |= c.on_dequeue(now, 50_000);
        }
        assert!(dropped_any, "sustained overload must drop");
        // One below-target sojourn exits the dropping state…
        assert!(!c.on_dequeue(now + 10_000, 500));
        let before = c.total_dropped();
        // …and the next excursion gets a fresh full-interval grace.
        for i in 0..50 {
            let t = now + 20_000 + i * 10_000;
            assert!(
                !c.on_dequeue(t, 50_000) || t >= now + 20_000 + cfg.interval_ns,
                "dropped before the grace interval elapsed"
            );
        }
        assert!(c.total_dropped() >= before);
    }
}
