//! # brb-sched — task-aware scheduling policies
//!
//! The paper's contribution lives here:
//!
//! * [`priority::Priority`] — a totally-ordered priority (lower serves
//!   first), derived from forecast costs in nanoseconds.
//! * [`policy`] — priority-assignment algorithms. The paper's two:
//!   **EqualMax** (every request inherits the bottleneck sub-task's cost —
//!   bottleneck-SJF over tasks) and **UnifIncr** (requests ranked by slack
//!   behind the bottleneck). Plus the task-oblivious **FIFO** baseline and
//!   two natural extensions used in ablations: per-request **SJF** and
//!   **EDF** on forecast completion deadlines.
//! * [`queue`] — server-side queue disciplines: plain FIFO and a *stable*
//!   priority queue (FIFO among equal priorities, so determinism survives
//!   priority ties).
//! * [`credits`] — the practical realization: a logically-centralized
//!   controller assigning clients credit rates proportional to reported
//!   demand, with congestion-triggered multiplicative backoff, adapted at
//!   1 s intervals; clients gate dispatch through token buckets.
//! * [`global_queue`] — the ideal *model* realization: one global
//!   priority queue; idle servers work-pull the highest-priority request
//!   they are allowed to serve (replica constraint), with zero
//!   coordination cost.
//! * [`overload`] — the overload lane: bounded queues with typed
//!   enqueue outcomes, admission-control load shedding, and a
//!   CoDel-style AQM (sojourn-time target, inverse-sqrt drop cadence).

pub mod credits;
pub mod global_queue;
pub mod overload;
pub mod policy;
pub mod priority;
pub mod queue;

pub use credits::{CreditBucket, CreditController, CreditsConfig, GrantTable};
pub use global_queue::GlobalQueue;
pub use overload::{Bounded, CoDel, CoDelConfig, DropReason, EnqueueOutcome, QueueBound};
pub use policy::{PolicyKind, PriorityPolicy, TaskView};
pub use priority::Priority;
pub use queue::{FifoQueue, PriorityQueue, RequestQueue};
