//! Priority-assignment algorithms.
//!
//! "When receiving a task, clients subdivide it into a set of sub-tasks,
//! one for each replica group ... Clients then determine the bottleneck
//! sub-task based on the costliest sub-task and assign a priority to every
//! request in the task." (§2.1)
//!
//! The two BRB algorithms:
//!
//! * **EqualMax** — every request gets the bottleneck sub-task's cost as
//!   its priority: tasks with shorter bottlenecks are served first
//!   (Shortest-Job-First where the "job length" is the task's bottleneck).
//! * **UnifIncr** — each request is ranked by its *slack* behind the
//!   bottleneck, `bottleneck − own_cost`: requests with long forecast
//!   service times are likely to bottleneck their task and get the highest
//!   priority.
//!
//! Baselines and ablation policies round out the space: task-oblivious
//! **FIFO**, per-request **SJF** (cost-aware but task-oblivious — isolates
//! the value of task awareness), **UnifIncrSubtask** (slack computed at
//! sub-task rather than request granularity) and **EDF** (earliest
//! forecast deadline first).

use crate::priority::Priority;
use serde::{Deserialize, Serialize};

/// What a policy may inspect about one task at assignment time. All costs
/// are client-side forecasts in nanoseconds (`brb-store::CostModel`).
#[derive(Debug, Clone, Copy)]
pub struct TaskView<'a> {
    /// Task arrival time at the client, nanoseconds.
    pub arrival_ns: u64,
    /// Forecast cost of each request.
    pub request_costs: &'a [u64],
    /// Sub-task index (`0..subtask_costs.len()`) of each request.
    pub request_subtask: &'a [usize],
    /// Total forecast cost of each sub-task (sum of its requests' costs:
    /// requests for one replica group may serialize on a single replica).
    pub subtask_costs: &'a [u64],
}

impl<'a> TaskView<'a> {
    /// The bottleneck sub-task's cost — the costliest sub-task, which
    /// lower-bounds the task's completion time.
    pub fn bottleneck_cost(&self) -> u64 {
        self.subtask_costs.iter().copied().max().unwrap_or(0)
    }

    /// Structural validation (used by debug assertions and tests).
    pub fn validate(&self) -> Result<(), String> {
        if self.request_costs.len() != self.request_subtask.len() {
            return Err("request arrays length mismatch".into());
        }
        if self.request_costs.is_empty() {
            return Err("task has no requests".into());
        }
        for &s in self.request_subtask {
            if s >= self.subtask_costs.len() {
                return Err(format!("sub-task index {s} out of range"));
            }
        }
        // Sub-task costs must equal the sum of their requests' costs.
        let mut sums = vec![0u64; self.subtask_costs.len()];
        for (&c, &s) in self.request_costs.iter().zip(self.request_subtask) {
            sums[s] += c;
        }
        if sums != self.subtask_costs {
            return Err("sub-task costs do not sum request costs".into());
        }
        Ok(())
    }
}

/// A priority-assignment algorithm.
pub trait PriorityPolicy {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// Assigns one priority per request (same order as
    /// `view.request_costs`). Lower priorities serve first.
    fn assign(&self, view: &TaskView<'_>) -> Vec<Priority> {
        let mut out = Vec::new();
        self.assign_into(view, &mut out);
        out
    }

    /// Allocation-free [`assign`][PriorityPolicy::assign]: clears `out`
    /// and fills it with one priority per request. The engine's hot path
    /// calls this with a reused buffer — millions of tasks per sweep,
    /// zero priority-vector allocations.
    fn assign_into(&self, view: &TaskView<'_>, out: &mut Vec<Priority>);

    /// Whether this policy uses task structure (for reporting).
    fn is_task_aware(&self) -> bool;
}

/// The available policies, serializable for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Task-oblivious FIFO: priority is the task's arrival time, so
    /// requests serve in global arrival order (what C3's servers do).
    Fifo,
    /// BRB EqualMax: every request inherits the bottleneck cost.
    EqualMax,
    /// BRB UnifIncr: slack behind the bottleneck, per request.
    UnifIncr,
    /// Ablation: UnifIncr with slack at sub-task granularity
    /// (`bottleneck − own_subtask_cost`).
    UnifIncrSubtask,
    /// Ablation: per-request SJF (cost-aware, task-oblivious).
    Sjf,
    /// Ablation: earliest-deadline-first with deadline
    /// `arrival + bottleneck`.
    Edf,
}

impl PolicyKind {
    /// Every policy, in canonical report order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Fifo,
        PolicyKind::EqualMax,
        PolicyKind::UnifIncr,
        PolicyKind::UnifIncrSubtask,
        PolicyKind::Sjf,
        PolicyKind::Edf,
    ];
}

impl PriorityPolicy for PolicyKind {
    fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::EqualMax => "equal-max",
            PolicyKind::UnifIncr => "unif-incr",
            PolicyKind::UnifIncrSubtask => "unif-incr-subtask",
            PolicyKind::Sjf => "sjf",
            PolicyKind::Edf => "edf",
        }
    }

    fn is_task_aware(&self) -> bool {
        matches!(
            self,
            PolicyKind::EqualMax
                | PolicyKind::UnifIncr
                | PolicyKind::UnifIncrSubtask
                | PolicyKind::Edf
        )
    }

    fn assign_into(&self, view: &TaskView<'_>, out: &mut Vec<Priority>) {
        debug_assert!(view.validate().is_ok(), "{:?}", view.validate());
        let n = view.request_costs.len();
        out.clear();
        match self {
            PolicyKind::Fifo => {
                out.resize(n, Priority::from_deadline_ns(view.arrival_ns));
            }
            PolicyKind::EqualMax => {
                let b = view.bottleneck_cost();
                out.resize(n, Priority::from_cost_ns(b));
            }
            PolicyKind::UnifIncr => {
                let b = view.bottleneck_cost();
                out.extend(
                    view.request_costs
                        .iter()
                        .map(|&c| Priority::from_cost_ns(b.saturating_sub(c))),
                );
            }
            PolicyKind::UnifIncrSubtask => {
                let b = view.bottleneck_cost();
                out.extend(
                    view.request_subtask
                        .iter()
                        .map(|&s| Priority::from_cost_ns(b.saturating_sub(view.subtask_costs[s]))),
                );
            }
            PolicyKind::Sjf => {
                out.extend(
                    view.request_costs
                        .iter()
                        .map(|&c| Priority::from_cost_ns(c)),
                );
            }
            PolicyKind::Edf => {
                let deadline = view.arrival_ns.saturating_add(view.bottleneck_cost());
                out.resize(n, Priority::from_deadline_ns(deadline));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A task shaped like Figure 1's T1 = [A, B, C]: A alone on one
    /// sub-task (cost 1), B and C together on another (cost 2).
    fn figure1_t1() -> (Vec<u64>, Vec<usize>, Vec<u64>) {
        (vec![100, 100, 100], vec![0, 1, 1], vec![100, 200])
    }

    fn view<'a>(
        arrival: u64,
        costs: &'a [u64],
        groups: &'a [usize],
        subtasks: &'a [u64],
    ) -> TaskView<'a> {
        TaskView {
            arrival_ns: arrival,
            request_costs: costs,
            request_subtask: groups,
            subtask_costs: subtasks,
        }
    }

    #[test]
    fn bottleneck_is_costliest_subtask() {
        let (c, g, s) = figure1_t1();
        let v = view(0, &c, &g, &s);
        assert_eq!(v.bottleneck_cost(), 200);
        assert!(v.validate().is_ok());
    }

    #[test]
    fn equal_max_gives_uniform_bottleneck_priority() {
        let (c, g, s) = figure1_t1();
        let p = PolicyKind::EqualMax.assign(&view(0, &c, &g, &s));
        assert_eq!(p, vec![Priority(200); 3]);
    }

    #[test]
    fn equal_max_prefers_shorter_bottleneck_tasks() {
        // T2 = [D, E] with two singleton sub-tasks of cost 100 → bottleneck
        // 100, beats T1's 200 in a priority queue.
        let t2 = view(0, &[100, 100], &[0, 1], &[100, 100]);
        let p2 = PolicyKind::EqualMax.assign(&t2);
        let (c, g, s) = figure1_t1();
        let p1 = PolicyKind::EqualMax.assign(&view(0, &c, &g, &s));
        assert!(p2[0] < p1[0], "shorter-bottleneck task must rank first");
    }

    #[test]
    fn unif_incr_ranks_by_slack() {
        // Costs 100 (slack 100) vs a hypothetical big request 200 (slack 0).
        let v = view(0, &[100, 200], &[0, 1], &[100, 200]);
        let p = PolicyKind::UnifIncr.assign(&v);
        assert_eq!(p[0], Priority(100));
        assert_eq!(p[1], Priority(0));
        assert!(p[1] < p[0], "bottleneck-bound request is most urgent");
    }

    #[test]
    fn unif_incr_slack_is_per_request_not_per_subtask() {
        // Two requests share sub-task 0 (costs 50+150=200), bottleneck 200.
        let v = view(0, &[50, 150, 120], &[0, 0, 1], &[200, 120]);
        let p = PolicyKind::UnifIncr.assign(&v);
        assert_eq!(p[0], Priority(150)); // 200-50
        assert_eq!(p[1], Priority(50)); // 200-150
        assert_eq!(p[2], Priority(80)); // 200-120
                                        // Sub-task variant collapses requests of a group to one rank.
        let ps = PolicyKind::UnifIncrSubtask.assign(&v);
        assert_eq!(ps[0], ps[1]);
        assert_eq!(ps[0], Priority(0)); // 200-200
        assert_eq!(ps[2], Priority(80));
    }

    #[test]
    fn fifo_orders_by_arrival_only() {
        let (c, g, s) = figure1_t1();
        let early = PolicyKind::Fifo.assign(&view(10, &c, &g, &s));
        let late = PolicyKind::Fifo.assign(&view(20, &c, &g, &s));
        assert!(early[0] < late[0]);
        assert_eq!(early, vec![Priority(10); 3]);
    }

    #[test]
    fn sjf_orders_by_request_cost() {
        let v = view(0, &[300, 100, 200], &[0, 1, 2], &[300, 100, 200]);
        let p = PolicyKind::Sjf.assign(&v);
        assert!(p[1] < p[2] && p[2] < p[0]);
    }

    #[test]
    fn edf_combines_arrival_and_bottleneck() {
        let (c, g, s) = figure1_t1();
        let p = PolicyKind::Edf.assign(&view(1_000, &c, &g, &s));
        assert_eq!(p, vec![Priority(1_200); 3]);
        // A later-arriving but much shorter task can still rank first.
        let quick = view(1_050, &[50], &[0], &[50]);
        let pq = PolicyKind::Edf.assign(&quick);
        assert!(pq[0] < p[0]);
    }

    #[test]
    fn task_awareness_flags() {
        use PolicyKind::*;
        assert!(!Fifo.is_task_aware());
        assert!(!Sjf.is_task_aware());
        for p in [EqualMax, UnifIncr, UnifIncrSubtask, Edf] {
            assert!(p.is_task_aware(), "{}", p.name());
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "fifo",
                "equal-max",
                "unif-incr",
                "unif-incr-subtask",
                "sjf",
                "edf"
            ]
        );
    }

    #[test]
    fn validation_catches_inconsistent_views() {
        // Length mismatch.
        assert!(view(0, &[1, 2], &[0], &[3]).validate().is_err());
        // Out-of-range sub-task.
        assert!(view(0, &[1], &[2], &[1]).validate().is_err());
        // Sums don't match.
        assert!(view(0, &[1, 2], &[0, 0], &[4]).validate().is_err());
        // Empty task.
        assert!(view(0, &[], &[], &[]).validate().is_err());
    }

    #[test]
    fn single_request_task_degenerates_gracefully() {
        let v = view(5, &[42], &[0], &[42]);
        assert_eq!(PolicyKind::EqualMax.assign(&v), vec![Priority(42)]);
        assert_eq!(PolicyKind::UnifIncr.assign(&v), vec![Priority(0)]);
        assert_eq!(PolicyKind::Sjf.assign(&v), vec![Priority(42)]);
    }
}
