//! The ideal "model" realization: a single global priority queue.
//!
//! From §2.2: "servers utilize a work-pulling mechanism to fetch requests
//! from a single global priority-based queue shared by all clients.
//! However, such a model is unrealizable since it assumes perfect
//! knowledge of global state." It is the lower bound BRB's credits
//! realization is measured against (the 38% headline).
//!
//! One subtlety survives even in the ideal: the *replica constraint*. A
//! server may only pull requests whose replica group it belongs to, so the
//! global queue is maintained per replica group and a puller scans exactly
//! the groups it serves.

use crate::priority::Priority;
use crate::queue::{PriorityQueue, RequestQueue};
use brb_store::ids::{GroupId, ServerId};
use brb_store::partition::Ring;

/// A globally-shared, priority-ordered queue partitioned by replica group.
pub struct GlobalQueue<T> {
    per_group: Vec<PriorityQueue<(u64, T)>>,
    /// Global insertion sequence: preserves cross-group FIFO among equal
    /// priorities so pulls are deterministic.
    next_seq: u64,
    len: usize,
}

impl<T> std::fmt::Debug for GlobalQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalQueue")
            .field("groups", &self.per_group.len())
            .field("next_seq", &self.next_seq)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

impl<T> GlobalQueue<T> {
    /// Creates a queue for `num_groups` replica groups.
    pub fn new(num_groups: u32) -> Self {
        GlobalQueue {
            per_group: (0..num_groups).map(|_| PriorityQueue::new()).collect(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Enqueues an item destined for replica group `group`.
    ///
    /// # Panics
    /// Panics if `group` is out of range.
    pub fn push(&mut self, group: GroupId, priority: Priority, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.per_group[group.index()].push(priority, (seq, item));
        self.len += 1;
    }

    /// Pulls the highest-priority request `server` is allowed to serve
    /// (lowest priority value; ties broken by global insertion order).
    pub fn pull_for(&mut self, server: ServerId, ring: &Ring) -> Option<(Priority, GroupId, T)> {
        // Scan the R groups this server belongs to and take the best head.
        let mut best: Option<(Priority, u64, GroupId)> = None;
        for g in ring.groups_of_server(server) {
            let q = &mut self.per_group[g.index()];
            if let Some(p) = q.peek_priority() {
                // Need the seq for tie-break: peek deeper via a pop/push
                // would disturb order, so we track (priority, seq) by
                // peeking the entry through pop-then-reinsert only when
                // chosen. Instead, compare priorities first and use the
                // stored seq lazily: pop is deferred until the winner is
                // known, so we must read the head's seq without popping.
                let seq = q.peek_seq().expect("non-empty");
                let candidate = (p, seq, g);
                best = match best {
                    None => Some(candidate),
                    Some(b) if (p, seq) < (b.0, b.1) => Some(candidate),
                    Some(b) => Some(b),
                };
            }
        }
        let (_, _, g) = best?;
        let (priority, (_, item)) = self.per_group[g.index()].pop().expect("head vanished");
        self.len -= 1;
        Some((priority, g, item))
    }

    /// Queued items across all groups.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items for one group.
    pub fn len_for_group(&self, group: GroupId) -> usize {
        self.per_group[group.index()].len()
    }
}

impl<T> PriorityQueue<(u64, T)> {
    /// The insertion sequence of the head entry (helper for the global
    /// queue's cross-group tie-break).
    fn peek_seq(&self) -> Option<u64> {
        self.peek_item().map(|(seq, _)| *seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Ring {
        Ring::paper_default() // 9 servers, R=3
    }

    #[test]
    fn pull_respects_replica_constraint() {
        let mut q = GlobalQueue::new(9);
        // Server 0 serves groups {0, 8, 7} (it is replica 1/2/3 of those).
        q.push(GroupId::new(4), Priority(1), "far");
        assert!(q.pull_for(ServerId::new(0), &ring()).is_none());
        // Server 4 is the primary of group 4.
        let (p, g, item) = q.pull_for(ServerId::new(4), &ring()).unwrap();
        assert_eq!((p, g, item), (Priority(1), GroupId::new(4), "far"));
    }

    #[test]
    fn pull_takes_global_best_across_groups() {
        let mut q = GlobalQueue::new(9);
        // Server 2 serves groups 2 (primary), 1, 0.
        q.push(GroupId::new(0), Priority(50), "g0");
        q.push(GroupId::new(1), Priority(10), "g1");
        q.push(GroupId::new(2), Priority(30), "g2");
        let r = ring();
        let s = ServerId::new(2);
        assert_eq!(q.pull_for(s, &r).unwrap().2, "g1");
        assert_eq!(q.pull_for(s, &r).unwrap().2, "g2");
        assert_eq!(q.pull_for(s, &r).unwrap().2, "g0");
        assert!(q.pull_for(s, &r).is_none());
    }

    #[test]
    fn ties_break_by_global_insertion_order() {
        let mut q = GlobalQueue::new(9);
        q.push(GroupId::new(1), Priority(5), "first");
        q.push(GroupId::new(0), Priority(5), "second");
        let r = ring();
        let s = ServerId::new(2); // serves both groups
        assert_eq!(q.pull_for(s, &r).unwrap().2, "first");
        assert_eq!(q.pull_for(s, &r).unwrap().2, "second");
    }

    #[test]
    fn len_accounting() {
        let mut q = GlobalQueue::new(9);
        assert!(q.is_empty());
        q.push(GroupId::new(0), Priority(1), 1);
        q.push(GroupId::new(0), Priority(2), 2);
        q.push(GroupId::new(3), Priority(3), 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.len_for_group(GroupId::new(0)), 2);
        assert_eq!(q.len_for_group(GroupId::new(3)), 1);
        q.pull_for(ServerId::new(0), &ring());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn two_servers_drain_shared_group_without_duplication() {
        let mut q = GlobalQueue::new(9);
        for i in 0..10 {
            q.push(GroupId::new(1), Priority(i), i);
        }
        let r = ring();
        let mut seen = Vec::new();
        // Servers 1, 2, 3 all serve group 1; alternate pulls.
        for i in 0..10 {
            let s = ServerId::new(1 + (i % 3));
            seen.push(q.pull_for(s, &r).unwrap().2);
        }
        let expect: Vec<u64> = (0..10).collect();
        assert_eq!(seen, expect);
        assert!(q.is_empty());
    }
}
