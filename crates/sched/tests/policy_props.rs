//! Property-based tests on the scheduling policies and the credits
//! controller — the invariants BRB's correctness rests on.

use brb_sched::{
    CreditBucket, CreditController, CreditsConfig, PolicyKind, Priority, PriorityPolicy,
    PriorityQueue, RequestQueue, TaskView,
};
use brb_store::ids::{ClientId, ServerId};
use proptest::prelude::*;

/// Builds a structurally-valid random task view: costs per request plus a
/// random assignment of requests to sub-tasks.
fn task_view_inputs() -> impl Strategy<Value = (u64, Vec<u64>, Vec<usize>)> {
    (1usize..40).prop_flat_map(|n| {
        (
            0u64..1_000_000,
            proptest::collection::vec(1u64..1_000_000, n..=n),
            proptest::collection::vec(0usize..n.min(9), n..=n),
        )
    })
}

fn normalize(groups: &[usize]) -> (Vec<usize>, usize) {
    // Compact group labels into dense indices 0..k.
    let mut map = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(groups.len());
    for &g in groups {
        let next = map.len();
        out.push(*map.entry(g).or_insert(next));
    }
    let k = map.len();
    (out, k)
}

proptest! {
    /// Every policy returns exactly one priority per request, and the
    /// assignment is deterministic.
    #[test]
    fn policies_are_total_and_deterministic(
        (arrival, costs, raw_groups) in task_view_inputs()
    ) {
        let (groups, k) = normalize(&raw_groups);
        let mut subtask_costs = vec![0u64; k];
        for (c, &g) in costs.iter().zip(&groups) {
            subtask_costs[g] += c;
        }
        let view = TaskView {
            arrival_ns: arrival,
            request_costs: &costs,
            request_subtask: &groups,
            subtask_costs: &subtask_costs,
        };
        prop_assert!(view.validate().is_ok());
        for policy in PolicyKind::ALL {
            let a = policy.assign(&view);
            let b = policy.assign(&view);
            prop_assert_eq!(a.len(), costs.len(), "{}", policy.name());
            prop_assert_eq!(a, b, "{} must be deterministic", policy.name());
        }
    }

    /// EqualMax gives every request in a task the same priority, equal to
    /// the bottleneck cost; UnifIncr priorities never exceed it and hit
    /// zero exactly for requests whose cost equals the bottleneck.
    #[test]
    fn equal_max_and_unif_incr_structure(
        (arrival, costs, raw_groups) in task_view_inputs()
    ) {
        let (groups, k) = normalize(&raw_groups);
        let mut subtask_costs = vec![0u64; k];
        for (c, &g) in costs.iter().zip(&groups) {
            subtask_costs[g] += c;
        }
        let view = TaskView {
            arrival_ns: arrival,
            request_costs: &costs,
            request_subtask: &groups,
            subtask_costs: &subtask_costs,
        };
        let bottleneck = view.bottleneck_cost();

        let em = PolicyKind::EqualMax.assign(&view);
        prop_assert!(em.iter().all(|&p| p == Priority(bottleneck)));

        let ui = PolicyKind::UnifIncr.assign(&view);
        for (i, &p) in ui.iter().enumerate() {
            prop_assert!(p.key() <= bottleneck);
            prop_assert_eq!(p.key(), bottleneck - costs[i].min(bottleneck));
        }
        // The costliest request of the bottleneck sub-task has the least
        // slack within its own sub-task.
        let (bg, _) = subtask_costs
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .unwrap();
        let most_urgent_in_bg = (0..costs.len())
            .filter(|&i| groups[i] == bg)
            .min_by_key(|&i| ui[i])
            .unwrap();
        let max_cost_in_bg = (0..costs.len())
            .filter(|&i| groups[i] == bg)
            .max_by_key(|&i| costs[i])
            .unwrap();
        prop_assert_eq!(ui[most_urgent_in_bg], ui[max_cost_in_bg]);
    }

    /// A priority queue drains in non-decreasing priority order with FIFO
    /// ties, regardless of interleaving.
    #[test]
    fn priority_queue_is_a_stable_total_order(
        ops in proptest::collection::vec((0u64..50, proptest::bool::ANY), 1..300)
    ) {
        let mut q = PriorityQueue::new();
        let mut seq = 0u64;
        let mut drained: Vec<(u64, u64)> = Vec::new();
        for (prio, pop) in ops {
            if pop {
                if let Some((p, s)) = q.pop() {
                    drained.push((p.key(), s));
                }
            } else {
                q.push(Priority(prio), seq);
                seq += 1;
            }
        }
        while let Some((p, s)) = q.pop() {
            drained.push((p.key(), s));
        }
        prop_assert_eq!(drained.len() as u64, seq);
        // Within any maximal run popped between pushes order may restart,
        // so instead verify the global invariant differently: replay pops
        // from a fresh queue holding everything — strict order must hold.
        let mut q2 = PriorityQueue::new();
        for &(p, s) in &drained {
            q2.push(Priority(p), s);
        }
        let mut prev: Option<(u64, u64)> = None;
        while let Some((p, s)) = q2.pop() {
            if let Some((pp, ps)) = prev {
                prop_assert!(p.key() > pp || (p.key() == pp && s > ps),
                    "order violated: ({pp},{ps}) then ({},{s})", p.key());
            }
            prev = Some((p.key(), s));
        }
    }

    /// Credit allocation never exceeds usable capacity under contention
    /// (modulo the per-client min-rate floor), and grants are proportional
    /// to demands.
    #[test]
    fn credit_grants_conserve_capacity(
        demands in proptest::collection::vec(0.0f64..20_000.0, 1..20),
        capacity in 1_000.0f64..50_000.0,
    ) {
        let mut c = CreditController::new(vec![capacity], CreditsConfig::default());
        for (i, &d) in demands.iter().enumerate() {
            c.report_demand(ClientId::new(i as u64), ServerId::new(0), d);
        }
        let grants = c.allocate();
        let total = grants.total_rate(ServerId::new(0));
        let total_demand: f64 = demands.iter().sum();
        let cfg = *c.config();
        if total_demand > capacity {
            // Contended: proportional shares bounded by capacity + floors.
            let bound = capacity + demands.len() as f64 * cfg.min_rate + 1e-6;
            prop_assert!(total <= bound, "granted {total} > bound {bound}");
            // Proportionality (for clients above the floor).
            let shares: Vec<(f64, f64)> = demands
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    (d, grants.rate(ServerId::new(0), ClientId::new(i as u64)).unwrap())
                })
                .filter(|&(_, g)| g > cfg.min_rate * 1.01)
                .collect();
            for w in shares.windows(2) {
                let (d1, g1) = w[0];
                let (d2, g2) = w[1];
                if d1 > 0.0 && d2 > 0.0 {
                    let r1 = g1 / d1;
                    let r2 = g2 / d2;
                    prop_assert!((r1 - r2).abs() / r1.max(r2) < 1e-6,
                        "not proportional: {r1} vs {r2}");
                }
            }
        } else {
            // Uncontended: everyone gets demand × headroom (or the floor).
            for (i, &d) in demands.iter().enumerate() {
                let g = grants.rate(ServerId::new(0), ClientId::new(i as u64)).unwrap();
                let expect = (d * cfg.headroom).max(cfg.min_rate);
                prop_assert!((g - expect).abs() < 1e-6);
            }
        }
    }

    /// A token bucket never goes negative and never exceeds its burst.
    #[test]
    fn bucket_token_bounds(
        rate in 1.0f64..10_000.0,
        ops in proptest::collection::vec((0u64..10_000_000, proptest::bool::ANY), 1..200),
    ) {
        let burst = (rate * 0.1).max(1.0);
        let mut b = CreditBucket::new(rate, burst);
        let mut now = 0u64;
        for (dt, take) in ops {
            now += dt;
            if take {
                let _ = b.try_take(now);
            }
            let tokens = b.tokens_at(now);
            prop_assert!(tokens >= 0.0, "negative tokens {tokens}");
            prop_assert!(tokens <= burst + 1e-9, "burst exceeded: {tokens} > {burst}");
        }
    }
}
