//! The stable JSON-lines report format `brb-lab run` emits.
//!
//! Line 1 is a header object (schema tag, scenario name, run shape, and
//! a full echo of the spec that produced the report — a report is
//! self-describing and reproducible). Every following line is one
//! (cell × strategy) record carrying the cell's axis values and the
//! strategy's across-seed summary. The schema is pinned by a golden
//! test and grepped in CI, like `BENCH_kernel.json`.
//!
//! Both execution backends flow through here unchanged: the simulator
//! (`runner::run_spec`) and the live threaded runtime
//! (`rt_backend::run_spec_rt`) produce the same `CellResult` shape, so
//! a report is a report regardless of what executed it. What each
//! `RunResult` field *means* when it came from real threads (wall-clock
//! latencies from intended arrivals, measured worker utilization,
//! zeroed simulator-only counters) is tabulated in
//! `crates/rt/README.md` under *Report field semantics*.

use crate::runner::CellResult;
use crate::spec::{CellAxes, ScenarioSpec};
use brb_core::experiment::StrategySummary;
use serde::Serialize;
use std::io::{self, Write};

/// The schema tag written into every report header.
pub const REPORT_SCHEMA: &str = "brb-lab/report-v1";

/// The report's first line.
#[derive(Debug, Clone)]
pub struct ReportHeader<'a> {
    /// Schema tag ([`REPORT_SCHEMA`]).
    pub schema: &'static str,
    /// Scenario name.
    pub scenario: &'a str,
    /// Grid cells in the report.
    pub cells: usize,
    /// Strategy display names, in spec order.
    pub strategies: Vec<String>,
    /// Seeds each strategy ran under.
    pub seeds: &'a [u64],
    /// The spec that produced this report.
    pub spec: &'a ScenarioSpec,
}

/// One (cell × strategy) record.
#[derive(Debug, Clone)]
pub struct ReportLine<'a> {
    /// Cell index in grid order.
    pub cell: usize,
    /// The axis values the cell ran at.
    pub axes: CellAxes,
    /// The strategy's across-seed summary (includes per-seed runs).
    pub summary: &'a StrategySummary,
}

// The derive stand-in does not handle lifetime generics; the report
// structs serialize by hand (key order here is the report schema).
impl Serialize for ReportHeader<'_> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("schema".into(), self.schema.to_value()),
            ("scenario".into(), self.scenario.to_value()),
            ("cells".into(), self.cells.to_value()),
            ("strategies".into(), self.strategies.to_value()),
            ("seeds".into(), self.seeds.to_value()),
            ("spec".into(), self.spec.to_value()),
        ])
    }
}

impl Serialize for ReportLine<'_> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("cell".into(), self.cell.to_value()),
            ("axes".into(), self.axes.to_value()),
            ("summary".into(), self.summary.to_value()),
        ])
    }
}

/// Writes the JSON-lines report for a completed scenario.
pub fn write_jsonl<W: Write>(
    spec: &ScenarioSpec,
    results: &[CellResult],
    mut w: W,
) -> io::Result<()> {
    let header = ReportHeader {
        schema: REPORT_SCHEMA,
        scenario: &spec.name,
        cells: results.len(),
        strategies: spec.strategies.iter().map(|s| s.name()).collect(),
        seeds: &spec.seeds,
        spec,
    };
    let line = serde_json::to_string(&header)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(w, "{line}")?;
    for cell in results {
        for summary in &cell.summaries {
            let record = ReportLine {
                cell: cell.index,
                axes: cell.axes,
                summary,
            };
            let line = serde_json::to_string(&record)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(w, "{line}")?;
        }
    }
    Ok(())
}

/// The report as a single string (testing and small runs).
pub fn to_jsonl_string(spec: &ScenarioSpec, results: &[CellResult]) -> String {
    let mut buf = Vec::new();
    write_jsonl(spec, results, &mut buf).expect("in-memory report write");
    String::from_utf8(buf).expect("reports are UTF-8")
}

/// Renders results as a fixed-width human table (one row per
/// cell × strategy), for the CLI's stderr companion output. When any
/// summary carries overload stats the table grows goodput and
/// drops/timeouts/shed columns — latency percentiles alone hide the
/// difference between "fast because healthy" and "fast because the
/// queue dropped the slow half".
pub fn render_table(results: &[CellResult]) -> String {
    let overload = results
        .iter()
        .flat_map(|c| &c.summaries)
        .any(|s| s.overload.is_some());
    let mut header: Vec<String> = vec![
        "cell".into(),
        "axes".into(),
        "strategy".into(),
        "median(ms)".into(),
        "95th(ms)".into(),
        "99th(ms)".into(),
    ];
    if overload {
        header.push("goodput(t/s)".into());
        header.push("drop/tmo/shed".into());
    }
    let ncols = header.len();
    let mut rows: Vec<Vec<String>> = vec![header];
    for cell in results {
        for s in &cell.summaries {
            let mut row = vec![
                cell.index.to_string(),
                axes_label(&cell.axes),
                s.strategy.clone(),
                format!("{:.2}±{:.2}", s.p50_ms.mean, s.p50_ms.stddev),
                format!("{:.2}±{:.2}", s.p95_ms.mean, s.p95_ms.stddev),
                format!("{:.2}±{:.2}", s.p99_ms.mean, s.p99_ms.stddev),
            ];
            if overload {
                match &s.overload {
                    Some(o) => {
                        row.push(format!("{:.0}", o.goodput.mean));
                        row.push(format!(
                            "{:.0}/{:.0}/{:.0}",
                            o.dropped.mean, o.timed_out.mean, o.shed.mean
                        ));
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
            }
            rows.push(row);
        }
    }
    let mut widths = vec![0usize; ncols];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (j, (cell, width)) in row.iter().zip(&widths).enumerate() {
            if j > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.chars().count()..*width {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

/// Compact `k=v` rendering of a cell's active axes (`-` when none).
pub fn axes_label(axes: &CellAxes) -> String {
    let mut parts = Vec::new();
    if let Some(l) = axes.load {
        parts.push(format!("load={l}"));
    }
    if let Some(f) = axes.mean_fanout {
        parts.push(format!("fanout={f}"));
    }
    if let Some(d) = axes.hedge_delay_us {
        parts.push(format!("hedge={d}us"));
    }
    if let Some(w) = axes.shed_above {
        parts.push(format!("shed={w}"));
    }
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use crate::runner::run_spec;
    use brb_core::config::Strategy;

    #[test]
    fn report_shape() {
        let spec = ScenarioBuilder::new("report-test")
            .tasks(600)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3(), Strategy::equal_max_model()])
            .seeds(&[1])
            .sweep_load(&[0.4, 0.6])
            .build()
            .unwrap();
        let results = run_spec(&spec).unwrap();
        let text = to_jsonl_string(&spec, &results);
        let lines: Vec<&str> = text.lines().collect();
        // Header + 2 cells x 2 strategies.
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[0].contains(&format!("\"schema\":\"{REPORT_SCHEMA}\"")));
        assert!(lines[0].contains("\"scenario\":\"report-test\""));
        assert!(lines[0].contains("\"spec\":"));
        for line in &lines[1..] {
            assert!(line.contains("\"cell\":"));
            assert!(line.contains("\"axes\":"));
            assert!(line.contains("\"p99_ms\":"));
        }
        let table = render_table(&results);
        assert_eq!(table.lines().count(), 1 + 1 + 4);
        assert!(table.contains("load=0.4"));
    }
}
