//! Fluent scenario construction.
//!
//! [`ScenarioBuilder`] replaces the raw-struct-mutation idiom
//! (`let mut cfg = ExperimentConfig::figure2_small(...); cfg.workload.load = ...`)
//! with typed setters; [`ScenarioBuilder::build`] validates the result
//! and returns typed [`ScenarioError`]s instead of letting impossible
//! combinations panic downstream.

use crate::error::ScenarioError;
use crate::spec::{
    DegradedServer, FaultSpec, QueueSpec, RunSpec, ScenarioSpec, SpikeFault, SweepSpec, TimeoutSpec,
};
use brb_core::config::{ClusterConfig, ExperimentConfig, Strategy, WorkloadConfig, WorkloadKind};
use brb_net::{LatencyModel, PlanMode};
use brb_store::cost::ForecastQuality;

/// Builds a [`ScenarioSpec`] from the paper's defaults outward.
///
/// Setters never fail; every check happens in [`Self::build`] (or the
/// [`Self::build_config`] shortcut), which returns typed errors.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl ScenarioBuilder {
    /// Starts from the paper's cluster and workload with *empty*
    /// strategy and seed sets (build fails until both are provided, or
    /// [`Self::build_config`] supplies them).
    pub fn new(name: &str) -> Self {
        ScenarioBuilder {
            spec: ScenarioSpec {
                name: name.to_string(),
                description: String::new(),
                cluster: ClusterConfig::paper_default(),
                workload: WorkloadConfig::paper_default(),
                scale_catalog: false,
                strategies: Vec::new(),
                seeds: Vec::new(),
                faults: FaultSpec::default(),
                sweep: SweepSpec::default(),
                run: RunSpec::default(),
                replay: false,
                queue: None,
                timeout: None,
            },
        }
    }

    /// Resumes building from an existing spec (e.g. a registry preset).
    pub fn from_spec(spec: ScenarioSpec) -> Self {
        ScenarioBuilder { spec }
    }

    /// The spec as accumulated so far, without validation.
    pub fn spec_unchecked(&self) -> &ScenarioSpec {
        &self.spec
    }

    // -- metadata ---------------------------------------------------------

    /// Sets the one-line description.
    pub fn describe(mut self, description: &str) -> Self {
        self.spec.description = description.to_string();
        self
    }

    // -- cluster ----------------------------------------------------------

    /// Sets the number of application servers (the paper's "clients").
    pub fn clients(mut self, n: u32) -> Self {
        self.spec.cluster.num_clients = n;
        self
    }

    /// Sets the number of storage servers.
    pub fn servers(mut self, n: u32) -> Self {
        self.spec.cluster.num_servers = n;
        self
    }

    /// Sets worker cores per storage server.
    pub fn cores(mut self, n: u32) -> Self {
        self.spec.cluster.cores_per_server = n;
        self
    }

    /// Sets the replication factor.
    pub fn replication(mut self, r: u32) -> Self {
        self.spec.cluster.replication = r;
        self
    }

    /// Sets the partition-ring size.
    pub fn partitions(mut self, n: u32) -> Self {
        self.spec.cluster.num_partitions = n;
        self
    }

    /// Sets the mean per-core service rate (requests/second).
    pub fn service_rate(mut self, rps: f64) -> Self {
        self.spec.cluster.service_rate_per_core = rps;
        self
    }

    /// Replaces the one-way latency model.
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.spec.cluster.latency = model;
        self
    }

    /// Sets the clients' cost-forecast quality.
    pub fn forecast(mut self, quality: ForecastQuality) -> Self {
        self.spec.cluster.forecast = quality;
        self
    }

    /// Replaces the per-server speed-factor vector directly (see also
    /// [`Self::degrade_server`] for the single-fault idiom).
    pub fn speed_factors(mut self, factors: Vec<f64>) -> Self {
        self.spec.cluster.server_speed_factors = factors;
        self
    }

    /// Replaces the whole cluster description.
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.spec.cluster = cluster;
        self
    }

    // -- workload ---------------------------------------------------------

    /// Sets the number of tasks per run.
    pub fn tasks(mut self, n: usize) -> Self {
        self.spec.workload.num_tasks = n;
        self
    }

    /// Sets the offered load as a fraction of aggregate capacity.
    pub fn load(mut self, load: f64) -> Self {
        self.spec.workload.load = load;
        self
    }

    /// Replaces the task-structure model.
    pub fn workload_kind(mut self, kind: WorkloadKind) -> Self {
        self.spec.workload.kind = kind;
        self
    }

    /// Replaces the whole workload description.
    pub fn workload(mut self, workload: WorkloadConfig) -> Self {
        self.spec.workload = workload;
        self
    }

    /// Shrinks the key/catalog universe with `num_tasks` at lowering
    /// time (`figure2-small` semantics).
    pub fn scale_catalog(mut self, on: bool) -> Self {
        self.spec.scale_catalog = on;
        self
    }

    // -- strategies and seeds ---------------------------------------------

    /// Appends one strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.spec.strategies.push(strategy);
        self
    }

    /// Replaces the strategy set.
    pub fn strategies(mut self, strategies: Vec<Strategy>) -> Self {
        self.spec.strategies = strategies;
        self
    }

    /// Appends one seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seeds.push(seed);
        self
    }

    /// Replaces the seed set.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.spec.seeds = seeds.to_vec();
        self
    }

    // -- faults -----------------------------------------------------------

    /// Degrades one server to `speed` × nominal (e.g. `0.5` = half
    /// speed). Clients are not told; adapting is the strategies' job.
    pub fn degrade_server(mut self, server: u32, speed: f64) -> Self {
        self.spec
            .faults
            .degraded
            .push(DegradedServer { server, speed });
        self
    }

    /// Layers transient latency spikes onto the (constant) fabric: each
    /// message independently eats `[extra_lo_us, extra_hi_us]`µs extra
    /// with probability `p_spike`.
    pub fn spike(mut self, p_spike: f64, extra_lo_us: u64, extra_hi_us: u64) -> Self {
        self.spec.faults.spike = Some(SpikeFault {
            p_spike,
            extra_lo_us,
            extra_hi_us,
        });
        self
    }

    // -- overload lane ----------------------------------------------------

    /// Bounds every server queue, optionally with an admission-control
    /// shed watermark and a CoDel AQM (see [`QueueSpec`]; durations in
    /// microseconds).
    pub fn bounded_queue(mut self, queue: QueueSpec) -> Self {
        self.spec.queue = Some(queue);
        self
    }

    /// Enables client-side request timeouts with capped-exponential
    /// retries (see [`TimeoutSpec`]; durations in microseconds).
    pub fn timeouts(mut self, timeout: TimeoutSpec) -> Self {
        self.spec.timeout = Some(timeout);
        self
    }

    // -- sweep axes -------------------------------------------------------

    /// Sweeps offered load over `values`.
    pub fn sweep_load(mut self, values: &[f64]) -> Self {
        self.spec.sweep.load = values.to_vec();
        self
    }

    /// Sweeps mean task fan-out over `values` (shifted-geometric
    /// synthetic workload per cell).
    pub fn sweep_mean_fanout(mut self, values: &[u32]) -> Self {
        self.spec.sweep.mean_fanout = values.to_vec();
        self
    }

    /// Sweeps the hedge trigger delay (µs) over `values`; applies to
    /// every `Hedged` strategy in the set.
    pub fn sweep_hedge_delay_us(mut self, values: &[u64]) -> Self {
        self.spec.sweep.hedge_delay_us = values.to_vec();
        self
    }

    /// Sweeps the admission-control shed watermark over `values`,
    /// overriding the queue spec's `shed_above` per cell (requires a
    /// queue spec — the starvation-curve sweep).
    pub fn sweep_shed_above(mut self, values: &[usize]) -> Self {
        self.spec.sweep.shed_above = values.to_vec();
        self
    }

    // -- harness ----------------------------------------------------------

    /// Sets the warm-up fraction excluded from statistics.
    pub fn warmup_fraction(mut self, fraction: f64) -> Self {
        self.spec.run.warmup_fraction = fraction;
        self
    }

    /// Sets the congestion-signal queue threshold (credits realization).
    pub fn congestion_threshold(mut self, threshold: usize) -> Self {
        self.spec.run.congestion_queue_threshold = threshold;
        self
    }

    /// Enables periodic telemetry snapshots (ns of virtual time).
    pub fn telemetry_interval_ns(mut self, interval: Option<u64>) -> Self {
        self.spec.run.telemetry_interval_ns = interval;
        self
    }

    /// Selects how the engine resolves network delays: the compiled
    /// `FabricPlan` fast path (default) or the forced per-message draw.
    /// The differential test harness flips this to prove the two paths
    /// produce byte-identical results.
    pub fn net(mut self, mode: PlanMode) -> Self {
        self.spec.run.net = mode;
        self
    }

    /// Enables record/replay mode (trace round-trips through JSONL).
    pub fn replay(mut self, on: bool) -> Self {
        self.spec.replay = on;
        self
    }

    // -- terminals --------------------------------------------------------

    /// Validates and returns the spec.
    pub fn build(self) -> Result<ScenarioSpec, ScenarioError> {
        self.spec.validate()?;
        Ok(self.spec)
    }

    /// Shortcut for tests and examples: validates a *single-cell*
    /// scenario and returns the concrete config for one (strategy,
    /// seed) run. Empty strategy/seed sets default to the given pair,
    /// so `ScenarioBuilder::new("x").build_config(s, 1)` just works.
    pub fn build_config(
        mut self,
        strategy: Strategy,
        seed: u64,
    ) -> Result<ExperimentConfig, ScenarioError> {
        if self.spec.strategies.is_empty() {
            self.spec.strategies = vec![strategy.clone()];
        }
        if self.spec.seeds.is_empty() {
            self.spec.seeds = vec![seed];
        }
        self.spec.config_for(strategy, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_core::config::SelectorKind;

    #[test]
    fn builder_composes_a_sweep_spec() {
        let spec = ScenarioBuilder::new("composite")
            .describe("sweep demo")
            .tasks(5_000)
            .scale_catalog(true)
            .load(0.6)
            .strategy(Strategy::c3())
            .strategy(Strategy::equal_max_credits())
            .seeds(&[1, 2])
            .degrade_server(0, 0.5)
            .sweep_load(&[0.5, 0.7, 0.9])
            .build()
            .unwrap();
        assert_eq!(spec.sweep.num_cells(), 3);
        let cells = spec.lower().unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[2].base.workload.load, 0.9);
        assert_eq!(cells[2].base.cluster.speed_of(0), 0.5);
    }

    #[test]
    fn build_config_defaults_strategy_and_seed() {
        let cfg = ScenarioBuilder::new("quick")
            .tasks(1_000)
            .scale_catalog(true)
            .build_config(Strategy::equal_max_model(), 7)
            .unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.strategy.name(), "EqualMax - Model");
        assert_eq!(cfg.workload.num_tasks, 1_000);
    }

    #[test]
    fn impossible_combinations_are_typed_errors_not_panics() {
        // Replication larger than the cluster.
        let err = ScenarioBuilder::new("r")
            .servers(3)
            .replication(5)
            .build_config(Strategy::c3(), 1)
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Replication {
                replication: 5,
                num_servers: 3
            }
        );

        // Zero partitions.
        let err = ScenarioBuilder::new("p")
            .partitions(0)
            .build_config(Strategy::c3(), 1)
            .unwrap_err();
        assert_eq!(err, ScenarioError::NoPartitions);

        // Absurd load.
        let err = ScenarioBuilder::new("l")
            .load(2.0)
            .build_config(Strategy::c3(), 1)
            .unwrap_err();
        assert_eq!(err, ScenarioError::Load(2.0));

        // Degrading a server the cluster does not have.
        let err = ScenarioBuilder::new("d")
            .servers(4)
            .replication(2)
            .partitions(4)
            .degrade_server(4, 0.5)
            .build_config(Strategy::c3(), 1)
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::ServerIndexOutOfRange {
                server: 4,
                num_servers: 4
            }
        );

        // Spike over a jittery base model.
        let err = ScenarioBuilder::new("s")
            .latency(LatencyModel::LogNormal {
                median_ns: 50_000,
                sigma: 0.2,
            })
            .spike(0.01, 1_000, 2_000)
            .build_config(Strategy::c3(), 1)
            .unwrap_err();
        assert_eq!(err, ScenarioError::SpikeNeedsConstantBase);

        // A zero-capacity queue.
        let err = ScenarioBuilder::new("q")
            .bounded_queue(QueueSpec {
                capacity: 0,
                shed_above: None,
                codel_target_us: None,
                codel_interval_us: None,
                priority_stats: false,
            })
            .build_config(Strategy::c3(), 1)
            .unwrap_err();
        assert!(matches!(err, ScenarioError::BadQueueSpec(_)), "{err:?}");

        // Retries above the engine's cap.
        let err = ScenarioBuilder::new("t")
            .timeouts(TimeoutSpec {
                timeout_us: 10_000,
                max_retries: 99,
                backoff_base_us: 0,
                backoff_cap_us: 0,
                retry_budget_percent: None,
            })
            .build_config(Strategy::c3(), 1)
            .unwrap_err();
        assert!(matches!(err, ScenarioError::BadTimeoutSpec(_)), "{err:?}");
    }

    #[test]
    fn overload_setters_lower_into_the_config() {
        let cfg = ScenarioBuilder::new("overload")
            .tasks(1_000)
            .scale_catalog(true)
            .bounded_queue(QueueSpec {
                capacity: 64,
                shed_above: Some(32),
                codel_target_us: Some(5_000),
                codel_interval_us: Some(100_000),
                priority_stats: false,
            })
            .timeouts(TimeoutSpec {
                timeout_us: 20_000,
                max_retries: 3,
                backoff_base_us: 500,
                backoff_cap_us: 4_000,
                retry_budget_percent: Some(10),
            })
            .build_config(Strategy::c3(), 1)
            .unwrap();
        assert!(!cfg.overload.is_off());
        assert_eq!(cfg.overload.queue.unwrap().capacity, 64);
        assert_eq!(cfg.overload.timeout.unwrap().timeout_us, 20_000);
    }

    #[test]
    fn hedge_axis_applies_to_hedged_strategies() {
        let spec = ScenarioBuilder::new("hedge")
            .tasks(1_000)
            .scale_catalog(true)
            .strategy(Strategy::Direct {
                selector: SelectorKind::LeastOutstanding,
                policy: brb_sched::PolicyKind::Fifo,
                priority_queues: false,
            })
            .strategy(Strategy::hedged_default())
            .seed(1)
            .sweep_hedge_delay_us(&[500, 9_000])
            .build()
            .unwrap();
        let cells = spec.lower().unwrap();
        assert_eq!(cells.len(), 2);
        match &cells[0].strategies[1] {
            Strategy::Hedged { delay_us, .. } => assert_eq!(*delay_us, 500),
            other => panic!("unexpected {other:?}"),
        }
        // The non-hedged strategy is untouched.
        assert!(matches!(cells[0].strategies[0], Strategy::Direct { .. }));
    }
}
