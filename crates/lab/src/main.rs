//! `brb-lab` — run declarative scenarios and emit JSON-lines reports.
//!
//! ```text
//! brb-lab list
//! brb-lab show <name|spec.toml|spec.json> [--json]
//! brb-lab run  <name|spec.toml|spec.json> [--tasks N] [--seeds a,b,..]
//!              [--out report.jsonl] [--quiet]
//! ```
//!
//! `run` resolves its argument against the preset registry first, then
//! as a spec file path. The JSON-lines report goes to stdout (or
//! `--out`); a human-readable table goes to stderr.

use brb_lab::{registry, report, rt_backend, runner, ScenarioError, ScenarioSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match command {
        "list" => cmd_list(rest),
        "show" => cmd_show(rest),
        "run" => cmd_run(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Scenario(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Io(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
brb-lab — declarative BRB experiment scenarios

usage:
  brb-lab list                         list registry presets
  brb-lab show <scenario> [--json]     print a spec as TOML (or JSON)
  brb-lab run  <scenario> [options]    run and emit a JSON-lines report

<scenario> is a registry preset name (see `brb-lab list`) or a path to
a .toml / .json spec file.

run options:
  --backend B      execution backend: sim (default) or rt — the live
                   threaded runtime (open-loop load, wall-clock latency)
  --tasks N        override tasks per run
  --seeds a,b,..   override the seed set
  --out FILE       write the report to FILE instead of stdout
  --quiet          suppress the human-readable table on stderr
";

/// Which engine executes the lowered scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// The deterministic discrete-event simulator.
    Sim,
    /// The live threaded runtime (`brb-rt`).
    Rt,
}

enum CliError {
    Usage(String),
    Scenario(ScenarioError),
    Io(String),
}

impl From<ScenarioError> for CliError {
    fn from(e: ScenarioError) -> Self {
        CliError::Scenario(e)
    }
}

/// Resolves a scenario argument. Anything that looks like a path (a
/// separator or a spec-file extension) is loaded as a file — so a
/// typo'd filename surfaces the I/O error, not "unknown preset";
/// everything else tries the registry first, then the filesystem.
fn resolve(arg: &str) -> Result<ScenarioSpec, ScenarioError> {
    let looks_like_path =
        arg.contains(['/', '\\']) || arg.ends_with(".toml") || arg.ends_with(".json");
    if looks_like_path {
        let spec = ScenarioSpec::load(arg)?;
        spec.validate()?;
        return Ok(spec);
    }
    match registry::spec(arg) {
        Ok(spec) => Ok(spec),
        Err(ScenarioError::UnknownPreset { .. }) if std::path::Path::new(arg).exists() => {
            let spec = ScenarioSpec::load(arg)?;
            spec.validate()?;
            Ok(spec)
        }
        Err(e) => Err(e),
    }
}

fn cmd_list(rest: &[String]) -> Result<(), CliError> {
    if !rest.is_empty() {
        return Err(CliError::Usage("list takes no arguments".into()));
    }
    let names = registry::names();
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
    for name in names {
        let desc = registry::description(name).unwrap_or("");
        println!("{name:width$}  {desc}");
    }
    Ok(())
}

fn cmd_show(rest: &[String]) -> Result<(), CliError> {
    let mut target = None;
    let mut json = false;
    for arg in rest {
        match arg.as_str() {
            "--json" => json = true,
            other if target.is_none() => target = Some(other.to_string()),
            other => return Err(CliError::Usage(format!("unexpected argument {other:?}"))),
        }
    }
    let target = target.ok_or_else(|| CliError::Usage("show needs a scenario".into()))?;
    let spec = resolve(&target)?;
    if json {
        println!("{}", spec.to_json()?);
    } else {
        print!("{}", spec.to_toml()?);
    }
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), CliError> {
    let mut target = None;
    let mut tasks: Option<usize> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut out: Option<String> = None;
    let mut quiet = false;
    let mut backend = Backend::Sim;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--backend" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--backend needs a value".into()))?;
                backend = match v.as_str() {
                    "sim" => Backend::Sim,
                    "rt" => Backend::Rt,
                    other => {
                        return Err(CliError::Usage(format!(
                            "bad --backend value {other:?} (expected sim or rt)"
                        )))
                    }
                };
            }
            "--tasks" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--tasks needs a value".into()))?;
                tasks = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --tasks value {v:?}")))?,
                );
            }
            "--seeds" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--seeds needs a value".into()))?;
                let parsed: Result<Vec<u64>, _> = v.split(',').map(str::parse).collect();
                seeds =
                    Some(parsed.map_err(|_| CliError::Usage(format!("bad --seeds value {v:?}")))?);
            }
            "--out" => {
                out = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--out needs a path".into()))?
                        .clone(),
                );
            }
            "--quiet" => quiet = true,
            other if target.is_none() => target = Some(other.to_string()),
            other => return Err(CliError::Usage(format!("unexpected argument {other:?}"))),
        }
    }
    let target = target.ok_or_else(|| CliError::Usage("run needs a scenario".into()))?;
    let mut spec = resolve(&target)?;
    if let Some(n) = tasks {
        spec.workload.num_tasks = n;
    }
    if let Some(s) = seeds {
        spec.seeds = s;
    }
    spec.validate()?;

    let cells = spec.sweep.num_cells();
    let runs = cells * spec.strategies.len() * spec.seeds.len();
    if !quiet {
        eprintln!(
            "scenario {:?} [{}]: {} cell(s) x {} strategies x {} seeds = {} runs, {} tasks each",
            spec.name,
            match backend {
                Backend::Sim => "sim",
                Backend::Rt => "rt (live threads, open-loop load)",
            },
            cells,
            spec.strategies.len(),
            spec.seeds.len(),
            runs,
            spec.workload.num_tasks,
        );
    }
    let start = std::time::Instant::now();
    let progress = |i: usize, n: usize| {
        if !quiet && n > 1 {
            eprintln!("  cell {}/{n} ...", i + 1);
        }
    };
    let results = match backend {
        Backend::Sim => runner::run_spec_with_progress(&spec, progress)?,
        Backend::Rt => rt_backend::run_spec_rt_with_progress(&spec, progress)?,
    };
    if !quiet {
        eprintln!("completed in {:.1?}\n", start.elapsed());
        eprint!("{}", report::render_table(&results));
    }
    match out {
        Some(path) => {
            let file =
                std::fs::File::create(&path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            report::write_jsonl(&spec, &results, std::io::BufWriter::new(file))
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            if !quiet {
                eprintln!("\nwrote {path}");
            }
        }
        None => {
            let stdout = std::io::stdout();
            report::write_jsonl(&spec, &results, stdout.lock())
                .map_err(|e| CliError::Io(e.to_string()))?;
        }
    }
    Ok(())
}
