//! `brb-lab` — run declarative scenarios and emit JSON-lines reports.
//!
//! ```text
//! brb-lab list
//! brb-lab show     <name|spec.toml|spec.json> [--json]
//! brb-lab run      <name|spec.toml|spec.json> [--tasks N] [--seeds a,b,..]
//!                  [--out report.jsonl] [--quiet]
//! brb-lab compare  <scenario> --baseline <strategy> [--backend sim|rt|both]
//!                  [--from report.jsonl] [--resamples N] [--confidence C]
//!                  [--quantile-ci] [--adjust-p]
//!                  [--out compare.jsonl] [--md compare.md]
//! brb-lab capacity <scenario> [--slo-p99-ms X] [--goodput-tolerance-pct X]
//!                  [--at LOAD] [--from report.jsonl]
//!                  [--out capacity.jsonl] [--md capacity.md]
//! ```
//!
//! `run` resolves its argument against the preset registry first, then
//! as a spec file path. The JSON-lines report goes to stdout (or
//! `--out`); a human-readable table goes to stderr. `compare` and
//! `capacity` analyze a run (fresh, or ingested with `--from`) into
//! `brb-lab/compare-v1` / `brb-lab/capacity-v1` JSONL plus markdown.

use brb_lab::analysis::{
    self, capacity_report, compare_report, ordering_concordance, parse_jsonl, AnalysisError,
    CapacityOptions, CompareOptions,
};
use brb_lab::{registry, report, rt_backend, runner, CellResult, ScenarioError, ScenarioSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match command {
        "list" => cmd_list(rest),
        "show" => cmd_show(rest),
        "run" => cmd_run(rest),
        "compare" => cmd_compare(rest),
        "capacity" => cmd_capacity(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Scenario(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Analysis(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Io(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
brb-lab — declarative BRB experiment scenarios

usage:
  brb-lab list                           list registry presets
  brb-lab show     <scenario> [--json]   print a spec as TOML (or JSON)
  brb-lab run      <scenario> [options]  run and emit a JSON-lines report
  brb-lab compare  <scenario> --baseline S [options]
                                         paired A/B deltas vs a baseline
                                         strategy, with significance
  brb-lab capacity <scenario> [options]  per-strategy saturation knee over
                                         a load sweep, with headroom

<scenario> is a registry preset name (see `brb-lab list`) or a path to
a .toml / .json spec file.

run options:
  --backend B      execution backend: sim (default) or rt — the live
                   threaded runtime (open-loop load, wall-clock latency)
  --tasks N        override tasks per run
  --seeds a,b,..   override the seed set
  --out FILE       write the report to FILE instead of stdout
  --quiet          suppress the human-readable table on stderr

compare options (plus --tasks/--seeds/--out/--quiet as above):
  --baseline S     baseline strategy (required; matching is forgiving:
                   random_fifo finds \"random+FIFO\")
  --backend B      sim (default), rt, or both (sim deltas + sim-vs-rt
                   strategy-ordering concordance)
  --from FILE      analyze an existing report-v1 JSONL instead of running
  --resamples N    bootstrap resamples per metric (default 2000)
  --confidence C   bootstrap confidence level (default 0.95)
  --quantile-ci    add order-statistic error bars (additive quantile_ci
                   key) on p50/p95/p99 for both sides of each delta
  --adjust-p       add Benjamini-Hochberg FDR-adjusted p values
                   (additive adjusted_p key) across the whole report
  --md FILE        also write the markdown report to FILE

capacity options (plus --backend/--tasks/--seeds/--out/--md/--from/--quiet):
  --slo-p99-ms X             declare loads with mean p99 above X unsafe
  --goodput-tolerance-pct X  max delivered-ratio shortfall (default 5)
  --at LOAD                  judge headroom at LOAD (default: lowest swept)
";

/// Which engine executes the lowered scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// The deterministic discrete-event simulator.
    Sim,
    /// The live threaded runtime (`brb-rt`).
    Rt,
}

enum CliError {
    Usage(String),
    Scenario(ScenarioError),
    Analysis(AnalysisError),
    Io(String),
}

impl From<ScenarioError> for CliError {
    fn from(e: ScenarioError) -> Self {
        CliError::Scenario(e)
    }
}

impl From<AnalysisError> for CliError {
    fn from(e: AnalysisError) -> Self {
        CliError::Analysis(e)
    }
}

/// Resolves a scenario argument. Anything that looks like a path (a
/// separator or a spec-file extension) is loaded as a file — so a
/// typo'd filename surfaces the I/O error, not "unknown preset";
/// everything else tries the registry first, then the filesystem.
fn resolve(arg: &str) -> Result<ScenarioSpec, ScenarioError> {
    let looks_like_path =
        arg.contains(['/', '\\']) || arg.ends_with(".toml") || arg.ends_with(".json");
    if looks_like_path {
        let spec = ScenarioSpec::load(arg)?;
        spec.validate()?;
        return Ok(spec);
    }
    match registry::spec(arg) {
        Ok(spec) => Ok(spec),
        Err(ScenarioError::UnknownPreset { .. }) if std::path::Path::new(arg).exists() => {
            let spec = ScenarioSpec::load(arg)?;
            spec.validate()?;
            Ok(spec)
        }
        Err(e) => Err(e),
    }
}

fn cmd_list(rest: &[String]) -> Result<(), CliError> {
    if !rest.is_empty() {
        return Err(CliError::Usage("list takes no arguments".into()));
    }
    let names = registry::names();
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
    for name in names {
        let desc = registry::description(name).unwrap_or("");
        println!("{name:width$}  {desc}");
    }
    Ok(())
}

fn cmd_show(rest: &[String]) -> Result<(), CliError> {
    let mut target = None;
    let mut json = false;
    for arg in rest {
        match arg.as_str() {
            "--json" => json = true,
            other if target.is_none() => target = Some(other.to_string()),
            other => return Err(CliError::Usage(format!("unexpected argument {other:?}"))),
        }
    }
    let target = target.ok_or_else(|| CliError::Usage("show needs a scenario".into()))?;
    let spec = resolve(&target)?;
    if json {
        println!("{}", spec.to_json()?);
    } else {
        print!("{}", spec.to_toml()?);
    }
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), CliError> {
    let mut target = None;
    let mut tasks: Option<usize> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut out: Option<String> = None;
    let mut quiet = false;
    let mut backend = Backend::Sim;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--backend" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--backend needs a value".into()))?;
                backend = match v.as_str() {
                    "sim" => Backend::Sim,
                    "rt" => Backend::Rt,
                    other => {
                        return Err(CliError::Usage(format!(
                            "bad --backend value {other:?} (expected sim or rt)"
                        )))
                    }
                };
            }
            "--tasks" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--tasks needs a value".into()))?;
                tasks = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --tasks value {v:?}")))?,
                );
            }
            "--seeds" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--seeds needs a value".into()))?;
                let parsed: Result<Vec<u64>, _> = v.split(',').map(str::parse).collect();
                seeds =
                    Some(parsed.map_err(|_| CliError::Usage(format!("bad --seeds value {v:?}")))?);
            }
            "--out" => {
                out = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--out needs a path".into()))?
                        .clone(),
                );
            }
            "--quiet" => quiet = true,
            other if target.is_none() => target = Some(other.to_string()),
            other => return Err(CliError::Usage(format!("unexpected argument {other:?}"))),
        }
    }
    let target = target.ok_or_else(|| CliError::Usage("run needs a scenario".into()))?;
    let mut spec = resolve(&target)?;
    if let Some(n) = tasks {
        spec.workload.num_tasks = n;
    }
    if let Some(s) = seeds {
        spec.seeds = s;
    }
    spec.validate()?;

    let cells = spec.sweep.num_cells();
    let runs = cells * spec.strategies.len() * spec.seeds.len();
    if !quiet {
        eprintln!(
            "scenario {:?} [{}]: {} cell(s) x {} strategies x {} seeds = {} runs, {} tasks each",
            spec.name,
            match backend {
                Backend::Sim => "sim",
                Backend::Rt => "rt (live threads, open-loop load)",
            },
            cells,
            spec.strategies.len(),
            spec.seeds.len(),
            runs,
            spec.workload.num_tasks,
        );
    }
    let start = std::time::Instant::now();
    let progress = |i: usize, n: usize| {
        if !quiet && n > 1 {
            eprintln!("  cell {}/{n} ...", i + 1);
        }
    };
    let results = match backend {
        Backend::Sim => runner::run_spec_with_progress(&spec, progress)?,
        Backend::Rt => rt_backend::run_spec_rt_with_progress(&spec, progress)?,
    };
    if !quiet {
        eprintln!("completed in {:.1?}\n", start.elapsed());
        eprint!("{}", report::render_table(&results));
    }
    match out {
        Some(path) => {
            let file =
                std::fs::File::create(&path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            report::write_jsonl(&spec, &results, std::io::BufWriter::new(file))
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            if !quiet {
                eprintln!("\nwrote {path}");
            }
        }
        None => {
            let stdout = std::io::stdout();
            report::write_jsonl(&spec, &results, stdout.lock())
                .map_err(|e| CliError::Io(e.to_string()))?;
        }
    }
    Ok(())
}

// -- analysis verbs ---------------------------------------------------------

/// Arguments shared by `compare` and `capacity`.
#[derive(Default)]
struct AnalysisArgs {
    target: Option<String>,
    from: Option<String>,
    backend: Option<String>,
    tasks: Option<usize>,
    seeds: Option<Vec<u64>>,
    out: Option<String>,
    md: Option<String>,
    quiet: bool,
}

impl AnalysisArgs {
    /// Consumes one flag (plus its value) from `iter`; `Ok(false)` when
    /// the flag is not one of the shared set.
    fn consume(
        &mut self,
        arg: &str,
        iter: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, CliError> {
        let value = |iter: &mut std::slice::Iter<'_, String>, flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg {
            "--from" => self.from = Some(value(iter, "--from")?),
            "--backend" => self.backend = Some(value(iter, "--backend")?),
            "--tasks" => {
                let v = value(iter, "--tasks")?;
                self.tasks = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --tasks value {v:?}")))?,
                );
            }
            "--seeds" => {
                let v = value(iter, "--seeds")?;
                let parsed: Result<Vec<u64>, _> = v.split(',').map(str::parse).collect();
                self.seeds =
                    Some(parsed.map_err(|_| CliError::Usage(format!("bad --seeds value {v:?}")))?);
            }
            "--out" => self.out = Some(value(iter, "--out")?),
            "--md" => self.md = Some(value(iter, "--md")?),
            "--quiet" => self.quiet = true,
            other if self.target.is_none() && !other.starts_with('-') => {
                self.target = Some(other.to_string());
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Resolves the input to analyze: an ingested report (`--from`) or a
    /// fresh run of the scenario. Returns the backend label for headers.
    fn resolve_input(
        &self,
        backend: Backend,
    ) -> Result<(ScenarioSpec, Vec<CellResult>, String), CliError> {
        if let Some(path) = &self.from {
            if self.tasks.is_some() || self.seeds.is_some() {
                return Err(CliError::Usage(
                    "--tasks/--seeds override a fresh run; they cannot rewrite --from".into(),
                ));
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            let parsed = parse_jsonl(&text)?;
            return Ok((parsed.spec, parsed.results, "file".into()));
        }
        let target = self
            .target
            .clone()
            .ok_or_else(|| CliError::Usage("need a scenario (or --from report.jsonl)".into()))?;
        let spec = self.prepared_spec(&target)?;
        let results = run_backend(&spec, backend, self.quiet)?;
        Ok((
            spec,
            results,
            match backend {
                Backend::Sim => "sim".into(),
                Backend::Rt => "rt".into(),
            },
        ))
    }

    /// Resolves the scenario and applies the --tasks/--seeds overrides.
    fn prepared_spec(&self, target: &str) -> Result<ScenarioSpec, CliError> {
        let mut spec = resolve(target)?;
        if let Some(n) = self.tasks {
            spec.workload.num_tasks = n;
        }
        if let Some(s) = &self.seeds {
            spec.seeds = s.clone();
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Writes the JSONL to --out (or stdout) and the markdown to --md
    /// (or, unless quiet, stderr).
    fn emit(&self, jsonl: &str, markdown: &str) -> Result<(), CliError> {
        match &self.out {
            Some(path) => {
                std::fs::write(path, jsonl).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                if !self.quiet {
                    eprintln!("wrote {path}");
                }
            }
            None => print!("{jsonl}"),
        }
        match &self.md {
            Some(path) => {
                std::fs::write(path, markdown).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                if !self.quiet {
                    eprintln!("wrote {path}");
                }
            }
            None => {
                if !self.quiet {
                    eprint!("{markdown}");
                }
            }
        }
        Ok(())
    }
}

fn run_backend(
    spec: &ScenarioSpec,
    backend: Backend,
    quiet: bool,
) -> Result<Vec<CellResult>, CliError> {
    let progress = |i: usize, n: usize| {
        if !quiet && n > 1 {
            eprintln!("  cell {}/{n} ...", i + 1);
        }
    };
    Ok(match backend {
        Backend::Sim => runner::run_spec_with_progress(spec, progress)?,
        Backend::Rt => rt_backend::run_spec_rt_with_progress(spec, progress)?,
    })
}

fn cmd_compare(rest: &[String]) -> Result<(), CliError> {
    let mut args = AnalysisArgs::default();
    let mut baseline: Option<String> = None;
    let mut resamples: u32 = 2_000;
    let mut confidence: f64 = 0.95;
    let mut quantile_ci = false;
    let mut adjust_p = false;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quantile-ci" => quantile_ci = true,
            "--adjust-p" => adjust_p = true,
            "--baseline" => {
                baseline = Some(
                    iter.next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage("--baseline needs a value".into()))?,
                );
            }
            "--resamples" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--resamples needs a value".into()))?;
                resamples = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --resamples value {v:?}")))?;
            }
            "--confidence" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--confidence needs a value".into()))?;
                confidence = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --confidence value {v:?}")))?;
            }
            other => {
                if !args.consume(other, &mut iter)? {
                    return Err(CliError::Usage(format!("unexpected argument {other:?}")));
                }
            }
        }
    }
    let baseline =
        baseline.ok_or_else(|| CliError::Usage("compare needs --baseline <strategy>".into()))?;
    let both = args.backend.as_deref() == Some("both");
    let backend = match args.backend.as_deref() {
        None | Some("sim") | Some("both") => Backend::Sim,
        Some("rt") => Backend::Rt,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "bad --backend value {other:?} (expected sim, rt, or both)"
            )))
        }
    };
    if both && args.from.is_some() {
        return Err(CliError::Usage(
            "--backend both needs fresh runs; it cannot ingest --from".into(),
        ));
    }
    let (spec, results, mut backend_label) = args.resolve_input(backend)?;
    if both {
        backend_label = "both".into();
    }
    let opts = CompareOptions {
        backend: backend_label,
        resamples,
        confidence,
        quantile_ci,
        adjust_p,
    };
    let report = compare_report(&spec, &results, &baseline, &opts)?;
    let mut jsonl = report.to_jsonl_string();
    // --backend both: append the sim-vs-rt strategy-ordering agreement
    // as additive JSONL lines after the compare records.
    let concordance = if both {
        if !args.quiet {
            eprintln!("re-running on the rt backend for concordance ...");
        }
        let rt_results = run_backend(&spec, Backend::Rt, args.quiet)?;
        let cells = ordering_concordance(&results, &rt_results)?;
        for cell in &cells {
            jsonl.push_str(&serde_json::to_string(cell).map_err(|e| CliError::Io(e.to_string()))?);
            jsonl.push('\n');
        }
        Some(cells)
    } else {
        None
    };
    let markdown = analysis::markdown::render_compare(&report, concordance.as_deref());
    args.emit(&jsonl, &markdown)
}

fn cmd_capacity(rest: &[String]) -> Result<(), CliError> {
    let mut args = AnalysisArgs::default();
    let mut slo_p99_ms: Option<f64> = None;
    let mut tolerance_pct: f64 = 5.0;
    let mut at_load: Option<f64> = None;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--slo-p99-ms" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--slo-p99-ms needs a value".into()))?;
                slo_p99_ms = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --slo-p99-ms value {v:?}")))?,
                );
            }
            "--goodput-tolerance-pct" => {
                let v = iter.next().ok_or_else(|| {
                    CliError::Usage("--goodput-tolerance-pct needs a value".into())
                })?;
                tolerance_pct = v.parse().map_err(|_| {
                    CliError::Usage(format!("bad --goodput-tolerance-pct value {v:?}"))
                })?;
            }
            "--at" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--at needs a value".into()))?;
                at_load = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --at value {v:?}")))?,
                );
            }
            other => {
                if !args.consume(other, &mut iter)? {
                    return Err(CliError::Usage(format!("unexpected argument {other:?}")));
                }
            }
        }
    }
    let backend = match args.backend.as_deref() {
        None | Some("sim") => Backend::Sim,
        Some("rt") => Backend::Rt,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "bad --backend value {other:?} (expected sim or rt)"
            )))
        }
    };
    let (spec, results, backend_label) = args.resolve_input(backend)?;
    let opts = CapacityOptions {
        backend: backend_label,
        slo_p99_ms,
        tolerance_pct,
        at_load,
    };
    let report = capacity_report(&spec, &results, &opts)?;
    let markdown = analysis::markdown::render_capacity(&report);
    args.emit(&report.to_jsonl_string(), &markdown)
}
