//! The declarative scenario description and its lowering.
//!
//! A [`ScenarioSpec`] is pure data — serde-round-trippable through TOML
//! and JSON — capturing everything an experiment sweep needs: cluster,
//! workload, fault injections, the strategy set, seeds, and sweep axes.
//! [`ScenarioSpec::lower`] expands the axes into a grid of
//! [`ScenarioCell`]s, each carrying a concrete
//! [`ExperimentConfig`] base for the existing multi-seed runner.

use crate::error::ScenarioError;
use brb_core::config::{
    ClusterConfig, ExperimentConfig, OverloadConfig, QueueConfig, Strategy, TimeoutConfig,
    WorkloadConfig, WorkloadKind,
};
use brb_net::{LatencyModel, PlanMode};
use brb_sched::CoDelConfig;
use brb_workload::FanoutDist;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Exclusive upper bound on offered load, as a fraction of cluster
/// capacity. Overload experiments deliberately go past 1.0× — that is
/// the whole point of the overload lane — but an open-loop run much
/// past saturation only grows an unbounded backlog and tells the same
/// story at 10× the wall-clock cost, so validation rejects anything at
/// or above this bound. One constant guards the base load, the load
/// sweep axis, and the degraded-capacity feasibility check.
pub const MAX_OFFERED_LOAD: f64 = 1.5;

/// One degraded storage server: `server` runs at `speed` × nominal.
/// Clients and the credits controller are *not* told; adapting is the
/// strategies' job.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct DegradedServer {
    /// Server index in `[0, num_servers)`.
    pub server: u32,
    /// Speed factor in `(0, ∞)`; `0.5` = half speed.
    pub speed: f64,
}

/// Transient in-network latency spikes layered onto a constant-latency
/// fabric: each message independently eats an extra uniform
/// `[extra_lo_us, extra_hi_us]` delay with probability `p_spike`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct SpikeFault {
    /// Per-message spike probability in `[0, 1]`.
    pub p_spike: f64,
    /// Minimum extra delay, microseconds.
    pub extra_lo_us: u64,
    /// Maximum extra delay, microseconds.
    pub extra_hi_us: u64,
}

/// Fault injections applied when the spec lowers.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct FaultSpec {
    /// Per-server speed degradations.
    #[serde(default)]
    pub degraded: Vec<DegradedServer>,
    /// Transient latency spikes.
    #[serde(default)]
    pub spike: Option<SpikeFault>,
}

impl FaultSpec {
    /// Whether any fault is configured.
    pub fn is_empty(&self) -> bool {
        self.degraded.is_empty() && self.spike.is_none()
    }
}

/// Sweep axes. Each non-empty axis contributes one grid dimension; the
/// grid is the cartesian product, and an all-empty sweep is a single
/// cell at the spec's base values.
///
/// Serde is hand-written (additive schema): the three original axes
/// always serialize, `shed_above` only when non-empty, so spec echoes
/// in pre-existing reports stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepSpec {
    /// Offered load as a fraction of aggregate capacity.
    pub load: Vec<f64>,
    /// Mean task fan-out (lowered to a shifted-geometric synthetic
    /// workload, the shape the fan-out ablation uses — heterogeneity is
    /// what makes task-awareness matter).
    pub mean_fanout: Vec<u32>,
    /// Hedge trigger delay in microseconds, applied to every `Hedged`
    /// strategy in the set.
    pub hedge_delay_us: Vec<u64>,
    /// Admission-control shed watermark, overriding the queue spec's
    /// `shed_above` per cell (requires the `queue` table — the
    /// starvation-curve sweep).
    pub shed_above: Vec<usize>,
}

impl Serialize for SweepSpec {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("load".to_string(), self.load.to_value()),
            ("mean_fanout".to_string(), self.mean_fanout.to_value()),
            ("hedge_delay_us".to_string(), self.hedge_delay_us.to_value()),
        ];
        if !self.shed_above.is_empty() {
            entries.push(("shed_above".to_string(), self.shed_above.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for SweepSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = serde::__private::as_object(v, "SweepSpec")?;
        Ok(SweepSpec {
            load: serde::__private::field_default(obj, "load")?,
            mean_fanout: serde::__private::field_default(obj, "mean_fanout")?,
            hedge_delay_us: serde::__private::field_default(obj, "hedge_delay_us")?,
            shed_above: serde::__private::field_default(obj, "shed_above")?,
        })
    }
}

impl SweepSpec {
    /// Whether no axis is configured (single-cell scenario).
    pub fn is_empty(&self) -> bool {
        self.load.is_empty()
            && self.mean_fanout.is_empty()
            && self.hedge_delay_us.is_empty()
            && self.shed_above.is_empty()
    }

    /// Number of grid cells this sweep expands to.
    pub fn num_cells(&self) -> usize {
        let dim = |n: usize| if n == 0 { 1 } else { n };
        dim(self.load.len())
            * dim(self.mean_fanout.len())
            * dim(self.hedge_delay_us.len())
            * dim(self.shed_above.len())
    }
}

/// Run-harness knobs shared by every cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct RunSpec {
    /// Fraction of the run (by arrival time) excluded from statistics.
    pub warmup_fraction: f64,
    /// Server queue length that raises a congestion signal (credits).
    pub congestion_queue_threshold: usize,
    /// Telemetry snapshot interval (ns of virtual time); `None` = off.
    #[serde(default)]
    pub telemetry_interval_ns: Option<u64>,
    /// Network delay resolution: `Compiled` (default) timestamps hops
    /// through the precompiled `FabricPlan`; `PerMessage` forces the
    /// per-message fabric draw — the differential-testing slow path.
    /// Results are byte-identical either way (test-enforced), so spec
    /// files only ever set this to pin down a regression.
    #[serde(default)]
    pub net: PlanMode,
}

impl Default for RunSpec {
    fn default() -> Self {
        // The values every paper experiment ran with.
        RunSpec {
            warmup_fraction: 0.05,
            congestion_queue_threshold: 96,
            telemetry_interval_ns: None,
            net: PlanMode::Compiled,
        }
    }
}

/// Bounded server queues for the overload lane: a hard capacity
/// (tail-drop + NACK), an optional admission-control shed watermark,
/// and an optional CoDel AQM (both `codel_*` knobs set together, in
/// microseconds of standing sojourn).
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct QueueSpec {
    /// Per-queue capacity; arrivals beyond it are tail-dropped.
    pub capacity: usize,
    /// Admission-control watermark: arrivals finding at least this many
    /// queued are shed before the queue fills (`None` disables).
    #[serde(default)]
    pub shed_above: Option<usize>,
    /// CoDel sojourn target, microseconds.
    #[serde(default)]
    pub codel_target_us: Option<u64>,
    /// CoDel interval (how long sojourn must exceed the target before
    /// dropping starts), microseconds.
    #[serde(default)]
    pub codel_interval_us: Option<u64>,
    /// Split terminal drop/shed counts by priority class (log₂ buckets
    /// of the priority key) in the report's additive `priority_classes`
    /// field. Observation-only; off by default. Simulator backend only.
    #[serde(default)]
    pub priority_stats: bool,
}

impl QueueSpec {
    /// Lowers to the core engine's queue knobs (µs → ns).
    pub fn lower(&self) -> QueueConfig {
        QueueConfig {
            capacity: self.capacity,
            shed_above: self.shed_above,
            codel: match (self.codel_target_us, self.codel_interval_us) {
                (Some(target_us), Some(interval_us)) => Some(CoDelConfig {
                    target_ns: target_us * 1_000,
                    interval_ns: interval_us * 1_000,
                }),
                _ => None,
            },
            priority_stats: self.priority_stats,
        }
    }
}

/// Client-side request timeouts with capped-exponential retries for the
/// overload lane (all durations in microseconds).
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct TimeoutSpec {
    /// Per-attempt timeout, dispatch → response.
    pub timeout_us: u64,
    /// Retries allowed after the first attempt (0 = a single timeout is
    /// terminal).
    #[serde(default)]
    pub max_retries: u32,
    /// First-retry backoff; doubles per retry. 0 retries immediately —
    /// the retry-storm configuration.
    #[serde(default)]
    pub backoff_base_us: u64,
    /// Cap on the exponential backoff (must be ≥ the base).
    #[serde(default)]
    pub backoff_cap_us: u64,
    /// Retry budget: a client stops retrying once its retries reach
    /// this percentage of its dispatches (`None` = unbudgeted).
    #[serde(default)]
    pub retry_budget_percent: Option<u32>,
}

impl TimeoutSpec {
    /// Lowers to the core engine's timeout knobs.
    pub fn lower(&self) -> TimeoutConfig {
        TimeoutConfig {
            timeout_us: self.timeout_us,
            max_retries: self.max_retries,
            backoff_base_us: self.backoff_base_us,
            backoff_cap_us: self.backoff_cap_us,
            retry_budget_percent: self.retry_budget_percent,
        }
    }
}

/// A complete declarative scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name, echoed in reports.
    pub name: String,
    /// One-line human description.
    #[serde(default)]
    pub description: String,
    /// The backend cluster (omit in spec files for the paper's cluster).
    #[serde(default)]
    pub cluster: ClusterConfig,
    /// The offered workload (omit in spec files for the paper's
    /// workload).
    #[serde(default)]
    pub workload: WorkloadConfig,
    /// Shrink the key/catalog universe with `num_tasks` at lowering time
    /// (the `figure2-small` semantics); leave `false` to take the
    /// workload's catalog numbers literally.
    #[serde(default)]
    pub scale_catalog: bool,
    /// Strategies under comparison (common random numbers per seed).
    pub strategies: Vec<Strategy>,
    /// Master seeds; each (cell × strategy × seed) is one run.
    pub seeds: Vec<u64>,
    /// Fault injections.
    #[serde(default)]
    pub faults: FaultSpec,
    /// Sweep axes.
    #[serde(default)]
    pub sweep: SweepSpec,
    /// Harness knobs.
    #[serde(default)]
    pub run: RunSpec,
    /// Record/replay mode: generate each seed's trace, round-trip it
    /// through the JSONL on-disk format, and drive every strategy from
    /// the replayed bytes (exercises the production-trace path).
    #[serde(default)]
    pub replay: bool,
    /// Bounded server queues + optional shedding/AQM (the overload
    /// lane); `None` = unbounded queues, the pre-overload engine.
    #[serde(default)]
    pub queue: Option<QueueSpec>,
    /// Client-side request timeouts + retries (the overload lane);
    /// `None` = clients never time out.
    #[serde(default)]
    pub timeout: Option<TimeoutSpec>,
}

/// The axis values one grid cell was lowered at (`None` = axis unused).
///
/// Serde is hand-written (additive schema): the three original keys
/// always serialize (`null` when inactive, the shape every pinned
/// report carries), `shed_above` only when that axis is active.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellAxes {
    /// Offered load, when the `load` axis is active.
    pub load: Option<f64>,
    /// Mean fan-out, when the `mean_fanout` axis is active.
    pub mean_fanout: Option<u32>,
    /// Hedge delay (µs), when the `hedge_delay_us` axis is active.
    pub hedge_delay_us: Option<u64>,
    /// Shed watermark, when the `shed_above` axis is active.
    pub shed_above: Option<usize>,
}

impl Serialize for CellAxes {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("load".to_string(), self.load.to_value()),
            ("mean_fanout".to_string(), self.mean_fanout.to_value()),
            ("hedge_delay_us".to_string(), self.hedge_delay_us.to_value()),
        ];
        if self.shed_above.is_some() {
            entries.push(("shed_above".to_string(), self.shed_above.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for CellAxes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = serde::__private::as_object(v, "CellAxes")?;
        Ok(CellAxes {
            load: serde::__private::field_default(obj, "load")?,
            mean_fanout: serde::__private::field_default(obj, "mean_fanout")?,
            hedge_delay_us: serde::__private::field_default(obj, "hedge_delay_us")?,
            shed_above: serde::__private::field_default(obj, "shed_above")?,
        })
    }
}

/// One lowered grid cell: a concrete base config plus the strategy and
/// seed sets, ready for `run_strategies_multi_seed`.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    /// Cell index in grid order.
    pub index: usize,
    /// The axis values this cell was lowered at.
    pub axes: CellAxes,
    /// Base config; the runner overrides `strategy` and `seed` per run.
    pub base: ExperimentConfig,
    /// Strategies (hedge-delay axis already applied).
    pub strategies: Vec<Strategy>,
    /// Seeds.
    pub seeds: Vec<u64>,
}

impl ScenarioCell {
    /// The concrete config for one (strategy, seed) run of this cell.
    pub fn config_for(&self, strategy: Strategy, seed: u64) -> ExperimentConfig {
        let mut cfg = self.base.clone();
        cfg.strategy = strategy;
        cfg.seed = seed;
        cfg
    }
}

impl ScenarioSpec {
    // -- serialization ----------------------------------------------------

    /// Renders the spec as a TOML document.
    pub fn to_toml(&self) -> Result<String, ScenarioError> {
        toml::to_string_pretty(self).map_err(|e| ScenarioError::Parse(e.to_string()))
    }

    /// Parses a spec from TOML.
    pub fn from_toml(s: &str) -> Result<Self, ScenarioError> {
        toml::from_str(s).map_err(|e| ScenarioError::Parse(e.to_string()))
    }

    /// Renders the spec as pretty JSON.
    pub fn to_json(&self) -> Result<String, ScenarioError> {
        serde_json::to_string_pretty(self).map_err(|e| ScenarioError::Parse(e.to_string()))
    }

    /// Parses a spec from JSON.
    pub fn from_json(s: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(s).map_err(|e| ScenarioError::Parse(e.to_string()))
    }

    /// Loads a spec file, dispatching on the `.toml` / `.json` extension
    /// (unknown extensions try TOML first, then JSON).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json(&text),
            Some("toml") => Self::from_toml(&text),
            _ => Self::from_toml(&text).or_else(|_| Self::from_json(&text)),
        }
    }

    // -- lowering ---------------------------------------------------------

    /// Validates the spec without lowering (same checks as [`Self::lower`]).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.lower().map(|_| ())
    }

    /// The cartesian axis grid, in row-major order (`load` outermost,
    /// then `mean_fanout`, then `hedge_delay_us`, then `shed_above`
    /// innermost). An empty sweep yields one all-`None` cell.
    pub fn axis_grid(&self) -> Vec<CellAxes> {
        fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().map(|&v| Some(v)).collect()
            }
        }
        let mut grid = Vec::with_capacity(self.sweep.num_cells());
        for &load in &axis(&self.sweep.load) {
            for &mean_fanout in &axis(&self.sweep.mean_fanout) {
                for &hedge_delay_us in &axis(&self.sweep.hedge_delay_us) {
                    for &shed_above in &axis(&self.sweep.shed_above) {
                        grid.push(CellAxes {
                            load,
                            mean_fanout,
                            hedge_delay_us,
                            shed_above,
                        });
                    }
                }
            }
        }
        grid
    }

    /// Validates the spec and expands it into the grid of concrete
    /// experiment cells.
    pub fn lower(&self) -> Result<Vec<ScenarioCell>, ScenarioError> {
        self.check_shape()?;
        let cluster = self.lower_cluster()?;
        self.check_load_feasibility(&cluster)?;
        let grid = self.axis_grid();
        let mut cells = Vec::with_capacity(grid.len());
        for (index, axes) in grid.into_iter().enumerate() {
            let workload = self.lower_workload(&axes)?;
            let strategies = self.lower_strategies(&axes);
            let base = ExperimentConfig {
                cluster: cluster.clone(),
                workload,
                strategy: strategies[0].clone(),
                seed: 0,
                warmup_fraction: self.run.warmup_fraction,
                congestion_queue_threshold: self.run.congestion_queue_threshold,
                telemetry_interval_ns: self.run.telemetry_interval_ns,
                net: self.run.net,
                overload: self.lower_overload(&axes),
            };
            // Everything the typed checks above did not cover (service
            // rates, latency parameters, credits tuning, ...) still goes
            // through the core structural validation.
            base.validate().map_err(ScenarioError::Config)?;
            cells.push(ScenarioCell {
                index,
                axes,
                base,
                strategies,
                seeds: self.seeds.clone(),
            });
        }
        Ok(cells)
    }

    /// Lowers a single-cell spec to its base config (errors with
    /// [`ScenarioError::MultiCell`] when sweep axes are present).
    pub fn base_config(&self) -> Result<ExperimentConfig, ScenarioError> {
        let cells = self.lower()?;
        match <[ScenarioCell; 1]>::try_from(cells) {
            Ok([cell]) => Ok(cell.base),
            Err(cells) => Err(ScenarioError::MultiCell { cells: cells.len() }),
        }
    }

    /// The concrete config for one (strategy, seed) run of a single-cell
    /// spec.
    pub fn config_for(
        &self,
        strategy: Strategy,
        seed: u64,
    ) -> Result<ExperimentConfig, ScenarioError> {
        let mut cfg = self.base_config()?;
        cfg.strategy = strategy;
        cfg.seed = seed;
        Ok(cfg)
    }

    // -- lowering internals ----------------------------------------------

    fn check_shape(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::MissingName);
        }
        if self.strategies.is_empty() {
            return Err(ScenarioError::EmptyStrategySet);
        }
        if self.seeds.is_empty() {
            return Err(ScenarioError::EmptySeeds);
        }
        for (i, &s) in self.seeds.iter().enumerate() {
            if self.seeds[..i].contains(&s) {
                return Err(ScenarioError::DuplicateSeed(s));
            }
        }
        let c = &self.cluster;
        if c.replication == 0 || c.replication > c.num_servers {
            return Err(ScenarioError::Replication {
                replication: c.replication,
                num_servers: c.num_servers,
            });
        }
        if c.num_partitions == 0 {
            return Err(ScenarioError::NoPartitions);
        }
        if !(self.workload.load > 0.0 && self.workload.load < MAX_OFFERED_LOAD) {
            return Err(ScenarioError::Load(self.workload.load));
        }
        if !(0.0..0.9).contains(&self.run.warmup_fraction) {
            return Err(ScenarioError::Warmup(self.run.warmup_fraction));
        }
        // Directly-specified speed factors.
        if c.server_speed_factors.len() > c.num_servers as usize {
            return Err(ScenarioError::SpeedFactorCount {
                given: c.server_speed_factors.len(),
                num_servers: c.num_servers,
            });
        }
        for (i, &f) in c.server_speed_factors.iter().enumerate() {
            if !f.is_finite() || f <= 0.0 {
                return Err(ScenarioError::BadSpeedFactor {
                    server: i as u32,
                    speed: f,
                });
            }
        }
        // Degradation faults.
        for (i, d) in self.faults.degraded.iter().enumerate() {
            if d.server >= c.num_servers {
                return Err(ScenarioError::ServerIndexOutOfRange {
                    server: d.server,
                    num_servers: c.num_servers,
                });
            }
            if !d.speed.is_finite() || d.speed <= 0.0 {
                return Err(ScenarioError::BadSpeedFactor {
                    server: d.server,
                    speed: d.speed,
                });
            }
            if self.faults.degraded[..i]
                .iter()
                .any(|p| p.server == d.server)
            {
                return Err(ScenarioError::DuplicateDegradedServer(d.server));
            }
        }
        // Spike fault.
        if let Some(spike) = &self.faults.spike {
            if !(0.0..=1.0).contains(&spike.p_spike) || !spike.p_spike.is_finite() {
                return Err(ScenarioError::BadSpikeProbability(spike.p_spike));
            }
            if spike.extra_lo_us > spike.extra_hi_us {
                return Err(ScenarioError::SpikeRangeInverted {
                    lo_us: spike.extra_lo_us,
                    hi_us: spike.extra_hi_us,
                });
            }
            if !matches!(c.latency, LatencyModel::Constant { .. }) {
                return Err(ScenarioError::SpikeNeedsConstantBase);
            }
        }
        // Sweep axes.
        for (i, &l) in self.sweep.load.iter().enumerate() {
            if !(l > 0.0 && l < MAX_OFFERED_LOAD) {
                return Err(ScenarioError::AxisValue {
                    axis: "load",
                    value: l,
                });
            }
            if self.sweep.load[..i].contains(&l) {
                return Err(ScenarioError::DuplicateAxisValue {
                    axis: "load",
                    value: l,
                });
            }
        }
        for (i, &fo) in self.sweep.mean_fanout.iter().enumerate() {
            if fo == 0 {
                return Err(ScenarioError::AxisValue {
                    axis: "mean_fanout",
                    value: 0.0,
                });
            }
            if self.sweep.mean_fanout[..i].contains(&fo) {
                return Err(ScenarioError::DuplicateAxisValue {
                    axis: "mean_fanout",
                    value: fo as f64,
                });
            }
        }
        if !self.sweep.hedge_delay_us.is_empty()
            && !self
                .strategies
                .iter()
                .any(|s| matches!(s, Strategy::Hedged { .. }))
        {
            return Err(ScenarioError::HedgeAxisWithoutHedgedStrategy);
        }
        for (i, &d) in self.sweep.hedge_delay_us.iter().enumerate() {
            if d == 0 {
                return Err(ScenarioError::AxisValue {
                    axis: "hedge_delay_us",
                    value: 0.0,
                });
            }
            if self.sweep.hedge_delay_us[..i].contains(&d) {
                return Err(ScenarioError::DuplicateAxisValue {
                    axis: "hedge_delay_us",
                    value: d as f64,
                });
            }
        }
        if !self.sweep.shed_above.is_empty() {
            let queue = self
                .queue
                .as_ref()
                .ok_or(ScenarioError::ShedAxisWithoutQueue)?;
            for (i, &w) in self.sweep.shed_above.iter().enumerate() {
                if w == 0 {
                    return Err(ScenarioError::AxisValue {
                        axis: "shed_above",
                        value: 0.0,
                    });
                }
                if self.sweep.shed_above[..i].contains(&w) {
                    return Err(ScenarioError::DuplicateAxisValue {
                        axis: "shed_above",
                        value: w as f64,
                    });
                }
                // Each swept watermark must produce a valid queue (e.g.
                // not exceed the capacity) — same check the base value
                // gets below.
                let mut swept = *queue;
                swept.shed_above = Some(w);
                swept
                    .lower()
                    .validate()
                    .map_err(ScenarioError::BadQueueSpec)?;
            }
        }
        // Overload lane.
        if let Some(q) = &self.queue {
            if q.codel_target_us.is_some() != q.codel_interval_us.is_some() {
                return Err(ScenarioError::CoDelKnobsIncomplete);
            }
            q.lower().validate().map_err(ScenarioError::BadQueueSpec)?;
        }
        if let Some(t) = &self.timeout {
            t.lower()
                .validate()
                .map_err(ScenarioError::BadTimeoutSpec)?;
        }
        Ok(())
    }

    /// Lowers the overload-lane specs (µs-denominated) to the core
    /// config's ns-denominated knobs. A `shed_above` axis value
    /// overrides the queue spec's watermark in that cell.
    fn lower_overload(&self, axes: &CellAxes) -> OverloadConfig {
        OverloadConfig {
            queue: self.queue.as_ref().map(|q| {
                let mut queue = *q;
                if let Some(w) = axes.shed_above {
                    queue.shed_above = Some(w);
                }
                queue.lower()
            }),
            timeout: self.timeout.as_ref().map(TimeoutSpec::lower),
        }
    }

    /// Applies degradation and spike faults to the cluster.
    fn lower_cluster(&self) -> Result<ClusterConfig, ScenarioError> {
        let mut cluster = self.cluster.clone();
        if !self.faults.degraded.is_empty() {
            let mut factors = cluster.server_speed_factors.clone();
            factors.resize(cluster.num_servers as usize, 1.0);
            for d in &self.faults.degraded {
                factors[d.server as usize] = d.speed;
            }
            cluster.server_speed_factors = factors;
        }
        if let Some(spike) = &self.faults.spike {
            let base_ns = match cluster.latency {
                LatencyModel::Constant { delay_ns } => delay_ns,
                _ => return Err(ScenarioError::SpikeNeedsConstantBase),
            };
            cluster.latency = LatencyModel::Spiky {
                base_ns,
                p_spike: spike.p_spike,
                spike_lo_ns: spike.extra_lo_us * 1_000,
                spike_hi_ns: spike.extra_hi_us * 1_000,
            };
        }
        Ok(cluster)
    }

    /// Rejects loads that only look feasible against nominal capacity.
    /// Only the loads that actually run are checked: a `load` sweep axis
    /// overrides the base value in every cell, so the base is exempt
    /// when the axis is present.
    fn check_load_feasibility(&self, cluster: &ClusterConfig) -> Result<(), ScenarioError> {
        let n = cluster.num_servers as usize;
        let effective_fraction = (0..n).map(|s| cluster.speed_of(s)).sum::<f64>() / n as f64;
        let mut loads = Vec::with_capacity(1 + self.sweep.load.len());
        if self.sweep.load.is_empty() {
            loads.push(self.workload.load);
        }
        loads.extend_from_slice(&self.sweep.load);
        for load in loads {
            let effective_load = load / effective_fraction;
            if effective_load >= MAX_OFFERED_LOAD {
                return Err(ScenarioError::LoadInfeasible {
                    load,
                    effective_load,
                });
            }
        }
        Ok(())
    }

    fn lower_workload(&self, axes: &CellAxes) -> Result<WorkloadConfig, ScenarioError> {
        let mut workload = self.workload.clone();
        if self.scale_catalog {
            workload.scale_to_tasks(workload.num_tasks);
        }
        if let Some(load) = axes.load {
            workload.load = load;
        }
        if let Some(f) = axes.mean_fanout {
            // The fan-out ablation's shape: shifted geometric keeps the
            // task mix heterogeneous (a fixed fan-out would erase the
            // signal task-aware policies schedule on).
            let fanout = if f <= 1 {
                FanoutDist::Fixed(1)
            } else {
                FanoutDist::Geometric { p: 1.0 / f as f64 }
            };
            workload.kind = WorkloadKind::Synthetic {
                fanout,
                num_keys: (workload.num_tasks as u64 * 20).max(10_000),
                zipf_exponent: 0.9,
            };
        }
        Ok(workload)
    }

    fn lower_strategies(&self, axes: &CellAxes) -> Vec<Strategy> {
        let mut strategies = self.strategies.clone();
        if let Some(delay) = axes.hedge_delay_us {
            for s in &mut strategies {
                if let Strategy::Hedged { delay_us, .. } = s {
                    *delay_us = delay;
                }
            }
        }
        strategies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_core::config::SelectorKind;

    fn minimal() -> ScenarioSpec {
        ScenarioSpec {
            name: "minimal".into(),
            description: String::new(),
            cluster: ClusterConfig::paper_default(),
            workload: WorkloadConfig::paper_default(),
            scale_catalog: true,
            strategies: vec![Strategy::c3()],
            seeds: vec![1],
            faults: FaultSpec::default(),
            sweep: SweepSpec::default(),
            run: RunSpec::default(),
            replay: false,
            queue: None,
            timeout: None,
        }
    }

    #[test]
    fn single_cell_lowering() {
        let mut spec = minimal();
        spec.workload.num_tasks = 2_000;
        let cells = spec.lower().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].axes, CellAxes::default());
        assert_eq!(cells[0].base.workload.num_tasks, 2_000);
        // scale_catalog shrank the catalog with the task count.
        match cells[0].base.workload.kind {
            WorkloadKind::Playlist {
                num_tracks,
                num_playlists,
                ..
            } => {
                assert_eq!(num_tracks, 20_000);
                assert_eq!(num_playlists, 2_000);
            }
            _ => panic!("unexpected kind"),
        }
    }

    #[test]
    fn grid_is_cartesian_row_major() {
        let mut spec = minimal();
        spec.strategies.push(Strategy::Hedged {
            selector: SelectorKind::LeastOutstanding,
            delay_us: 5_000,
        });
        spec.sweep.load = vec![0.5, 0.7];
        spec.sweep.hedge_delay_us = vec![1_000, 2_000, 4_000];
        let cells = spec.lower().unwrap();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].axes.load, Some(0.5));
        assert_eq!(cells[0].axes.hedge_delay_us, Some(1_000));
        assert_eq!(cells[1].axes.hedge_delay_us, Some(2_000));
        assert_eq!(cells[3].axes.load, Some(0.7));
        // The hedge axis rewrote the hedged strategy's delay only.
        match &cells[1].strategies[1] {
            Strategy::Hedged { delay_us, .. } => assert_eq!(*delay_us, 2_000),
            other => panic!("unexpected strategy {other:?}"),
        }
        assert_eq!(cells[1].base.workload.load, 0.5);
    }

    #[test]
    fn faults_lower_into_cluster() {
        let mut spec = minimal();
        spec.faults.degraded = vec![DegradedServer {
            server: 3,
            speed: 0.5,
        }];
        spec.faults.spike = Some(SpikeFault {
            p_spike: 0.01,
            extra_lo_us: 10_000,
            extra_hi_us: 20_000,
        });
        let base = spec.base_config().unwrap();
        assert_eq!(base.cluster.server_speed_factors.len(), 9);
        assert_eq!(base.cluster.speed_of(3), 0.5);
        assert_eq!(base.cluster.speed_of(0), 1.0);
        assert_eq!(
            base.cluster.latency,
            LatencyModel::Spiky {
                base_ns: 50_000,
                p_spike: 0.01,
                spike_lo_ns: 10_000_000,
                spike_hi_ns: 20_000_000,
            }
        );
    }

    #[test]
    fn typed_rejections() {
        let mut spec = minimal();
        spec.cluster.replication = 99;
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::Replication {
                replication: 99,
                num_servers: 9
            })
        );

        let mut spec = minimal();
        spec.strategies.clear();
        assert_eq!(spec.validate(), Err(ScenarioError::EmptyStrategySet));

        let mut spec = minimal();
        spec.seeds = vec![1, 2, 1];
        assert_eq!(spec.validate(), Err(ScenarioError::DuplicateSeed(1)));

        let mut spec = minimal();
        spec.faults.degraded = vec![DegradedServer {
            server: 9,
            speed: 0.5,
        }];
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::ServerIndexOutOfRange {
                server: 9,
                num_servers: 9
            })
        );

        let mut spec = minimal();
        spec.sweep.hedge_delay_us = vec![1_000];
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::HedgeAxisWithoutHedgedStrategy)
        );

        let mut spec = minimal();
        spec.sweep.load = vec![0.5, 0.5];
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::DuplicateAxisValue {
                axis: "load",
                value: 0.5
            })
        );
    }

    #[test]
    fn offered_load_bound_is_one_constant_at_every_gate() {
        // All three validation gates — base load, sweep axis, degraded
        // feasibility — must reject exactly at MAX_OFFERED_LOAD, and
        // every rejection message must cite the bound so the constant
        // cannot silently drift apart from its documentation.
        let mut spec = minimal();
        spec.workload.load = MAX_OFFERED_LOAD;
        let err = spec.validate().unwrap_err();
        assert_eq!(err, ScenarioError::Load(MAX_OFFERED_LOAD));
        assert!(err.to_string().contains("1.5"), "{err}");
        // Just inside the bound is accepted.
        spec.workload.load = MAX_OFFERED_LOAD - 0.01;
        assert!(spec.validate().is_ok());

        let mut spec = minimal();
        spec.sweep.load = vec![MAX_OFFERED_LOAD];
        let err = spec.validate().unwrap_err();
        assert_eq!(
            err,
            ScenarioError::AxisValue {
                axis: "load",
                value: MAX_OFFERED_LOAD
            }
        );
        assert!(err.to_string().contains("1.5"), "{err}");

        let mut spec = minimal();
        // Half-speed cluster: nominal 0.8 is an effective 1.6 ≥ bound.
        spec.workload.load = 0.8;
        for server in 0..spec.cluster.num_servers {
            spec.faults
                .degraded
                .push(DegradedServer { server, speed: 0.5 });
        }
        let err = spec.validate().unwrap_err();
        assert!(
            matches!(err, ScenarioError::LoadInfeasible { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("1.5"), "{err}");
    }

    #[test]
    fn degraded_capacity_makes_high_load_infeasible() {
        let mut spec = minimal();
        // 0.9 nominal load is fine...
        spec.workload.load = 0.9;
        assert!(spec.validate().is_ok());
        // ...but not when most of the cluster runs at 10%.
        for server in 0..5 {
            spec.faults
                .degraded
                .push(DegradedServer { server, speed: 0.1 });
        }
        match spec.validate() {
            Err(ScenarioError::LoadInfeasible { load, .. }) => assert_eq!(load, 0.9),
            other => panic!("expected LoadInfeasible, got {other:?}"),
        }
        // A load sweep axis overrides the base load in every cell, so a
        // feasible axis rescues the spec (the infeasible 0.9 never runs)...
        spec.sweep.load = vec![0.2, 0.3];
        assert!(spec.validate().is_ok(), "{:?}", spec.validate());
        // ...while an infeasible axis value is still rejected.
        spec.sweep.load.push(1.0);
        match spec.validate() {
            Err(ScenarioError::LoadInfeasible { load, .. }) => assert_eq!(load, 1.0),
            other => panic!("expected LoadInfeasible, got {other:?}"),
        }
    }

    #[test]
    fn multi_cell_base_config_is_refused() {
        let mut spec = minimal();
        spec.sweep.load = vec![0.5, 0.7];
        assert_eq!(
            spec.base_config().map(|_| ()),
            Err(ScenarioError::MultiCell { cells: 2 })
        );
    }

    #[test]
    fn overload_specs_lower_microseconds_to_core_knobs() {
        let mut spec = minimal();
        spec.queue = Some(QueueSpec {
            capacity: 64,
            shed_above: Some(48),
            codel_target_us: Some(5_000),
            codel_interval_us: Some(100_000),
            priority_stats: false,
        });
        spec.timeout = Some(TimeoutSpec {
            timeout_us: 20_000,
            max_retries: 2,
            backoff_base_us: 500,
            backoff_cap_us: 4_000,
            retry_budget_percent: Some(10),
        });
        let base = spec.base_config().unwrap();
        let queue = base.overload.queue.unwrap();
        assert_eq!(queue.capacity, 64);
        assert_eq!(queue.shed_above, Some(48));
        let codel = queue.codel.unwrap();
        assert_eq!(codel.target_ns, 5_000_000);
        assert_eq!(codel.interval_ns, 100_000_000);
        let timeout = base.overload.timeout.unwrap();
        assert_eq!(timeout.timeout_us, 20_000);
        assert_eq!(timeout.max_retries, 2);
        assert_eq!(timeout.retry_budget_percent, Some(10));
        // Knobs off lowers to the legacy engine exactly.
        assert!(minimal().base_config().unwrap().overload.is_off());
    }

    #[test]
    fn overload_specs_are_validated_typed() {
        // A lone CoDel knob is ambiguous.
        let mut spec = minimal();
        spec.queue = Some(QueueSpec {
            capacity: 64,
            shed_above: None,
            codel_target_us: Some(5_000),
            codel_interval_us: None,
            priority_stats: false,
        });
        assert_eq!(spec.validate(), Err(ScenarioError::CoDelKnobsIncomplete));

        // Shed watermark above capacity.
        let mut spec = minimal();
        spec.queue = Some(QueueSpec {
            capacity: 64,
            shed_above: Some(65),
            codel_target_us: None,
            codel_interval_us: None,
            priority_stats: false,
        });
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::BadQueueSpec(_))
        ));

        // Backoff cap below the base.
        let mut spec = minimal();
        spec.timeout = Some(TimeoutSpec {
            timeout_us: 20_000,
            max_retries: 2,
            backoff_base_us: 4_000,
            backoff_cap_us: 500,
            retry_budget_percent: None,
        });
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::BadTimeoutSpec(_))
        ));
    }

    #[test]
    fn overload_specs_round_trip_through_toml_and_json() {
        let mut spec = minimal();
        spec.queue = Some(QueueSpec {
            capacity: 128,
            shed_above: Some(96),
            codel_target_us: None,
            codel_interval_us: None,
            priority_stats: false,
        });
        spec.timeout = Some(TimeoutSpec {
            timeout_us: 50_000,
            max_retries: 1,
            backoff_base_us: 1_000,
            backoff_cap_us: 8_000,
            retry_budget_percent: None,
        });
        let toml_back = ScenarioSpec::from_toml(&spec.to_toml().unwrap()).unwrap();
        assert_eq!(toml_back.queue, spec.queue);
        assert_eq!(toml_back.timeout, spec.timeout);
        let json_back = ScenarioSpec::from_json(&spec.to_json().unwrap()).unwrap();
        assert_eq!(json_back.queue, spec.queue);
        assert_eq!(json_back.timeout, spec.timeout);
        // Legacy spec files (no overload tables) still parse: knobs off.
        let legacy = minimal().to_toml().unwrap();
        assert!(!legacy.contains("[queue]") && !legacy.contains("[timeout]"));
        let back = ScenarioSpec::from_toml(&legacy).unwrap();
        assert!(back.queue.is_none() && back.timeout.is_none());
    }
}
