//! Typed scenario-construction errors.
//!
//! The builder and the spec-lowering path reject impossible
//! configurations *before* anything runs, with errors that carry the
//! offending numbers — the imperative `ExperimentConfig` mutation style
//! they replace surfaced the same mistakes as panics deep inside the
//! engine (or not at all).

use crate::spec::MAX_OFFERED_LOAD;
use std::fmt;

/// Everything that can be wrong with a scenario description.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The requested registry preset does not exist.
    UnknownPreset {
        /// The name that failed to resolve.
        name: String,
        /// Every name the registry knows.
        available: Vec<&'static str>,
    },
    /// Scenarios must be named (reports echo the name).
    MissingName,
    /// A scenario needs at least one strategy.
    EmptyStrategySet,
    /// A scenario needs at least one seed.
    EmptySeeds,
    /// The same seed appears twice (cells would be duplicated).
    DuplicateSeed(u64),
    /// Replication factor incompatible with the cluster size.
    Replication {
        /// Requested replication factor.
        replication: u32,
        /// Servers available.
        num_servers: u32,
    },
    /// The partition ring cannot be empty.
    NoPartitions,
    /// Offered load outside the sane `(0, MAX_OFFERED_LOAD)` band.
    Load(f64),
    /// Offered load is infeasible once degraded-server capacity is
    /// accounted for: `load / effective_capacity_fraction` leaves the
    /// sane band even though the nominal load looks fine.
    LoadInfeasible {
        /// Offered load against nominal capacity.
        load: f64,
        /// The load the *degraded* cluster actually experiences.
        effective_load: f64,
    },
    /// A fault references a server the cluster does not have.
    ServerIndexOutOfRange {
        /// The referenced server index.
        server: u32,
        /// Servers available.
        num_servers: u32,
    },
    /// A speed factor must be positive and finite.
    BadSpeedFactor {
        /// The server it was assigned to.
        server: u32,
        /// The rejected factor.
        speed: f64,
    },
    /// More speed factors than servers.
    SpeedFactorCount {
        /// Factors supplied.
        given: usize,
        /// Servers available.
        num_servers: u32,
    },
    /// The same server is degraded twice.
    DuplicateDegradedServer(u32),
    /// Spike probability outside `[0, 1]`.
    BadSpikeProbability(f64),
    /// Spike delay range inverted.
    SpikeRangeInverted {
        /// Lower bound, microseconds.
        lo_us: u64,
        /// Upper bound, microseconds.
        hi_us: u64,
    },
    /// The transient-spike fault layers onto a constant-latency fabric;
    /// the base model already carries jitter.
    SpikeNeedsConstantBase,
    /// Warm-up fraction outside `[0, 0.9)`.
    Warmup(f64),
    /// A sweep axis contains an out-of-domain value.
    AxisValue {
        /// Which axis.
        axis: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A sweep axis lists the same value twice.
    DuplicateAxisValue {
        /// Which axis.
        axis: &'static str,
        /// The duplicated value.
        value: f64,
    },
    /// A `hedge_delay_us` axis needs at least one `Hedged` strategy to
    /// apply to.
    HedgeAxisWithoutHedgedStrategy,
    /// A `shed_above` axis needs the `queue` table to override — without
    /// bounded queues there is no admission control to sweep.
    ShedAxisWithoutQueue,
    /// The overload lane's bounded-queue spec is structurally invalid
    /// (carries the core validation message, e.g. a shed watermark
    /// above capacity).
    BadQueueSpec(String),
    /// CoDel wants `codel_target_us` and `codel_interval_us` together;
    /// one alone is ambiguous (there is no universal default for the
    /// other).
    CoDelKnobsIncomplete,
    /// The overload lane's timeout/retry spec is structurally invalid
    /// (carries the core validation message, e.g. a backoff cap below
    /// the base).
    BadTimeoutSpec(String),
    /// The operation needs a single-cell scenario but the sweep grid has
    /// several cells.
    MultiCell {
        /// Cells the grid lowered to.
        cells: usize,
    },
    /// The scenario uses a feature the live `brb-rt` backend cannot
    /// honor (simulator-only machinery: hedging, oracle state, fault
    /// injection, …). Lowering fails with this typed error instead of
    /// silently running something else.
    RtUnsupported {
        /// What the live backend cannot honor.
        what: String,
    },
    /// A live `brb-rt` run failed mid-flight (a worker or router thread
    /// panicked, or the cluster shut down under a waiting task). The
    /// run's numbers are unusable; the harness reports the failure typed
    /// instead of hanging or panicking through the cell loop.
    RtRunFailed {
        /// The live runtime's error rendering.
        cause: String,
    },
    /// A structural invariant checked by the core config layer failed
    /// (carries the core error message).
    Config(String),
    /// A spec file failed to parse.
    Parse(String),
    /// A spec file could not be read.
    Io(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ScenarioError::*;
        match self {
            UnknownPreset { name, available } => {
                write!(
                    f,
                    "unknown preset {name:?}; available: {}",
                    available.join(", ")
                )
            }
            MissingName => write!(f, "scenario needs a non-empty name"),
            EmptyStrategySet => write!(f, "scenario needs at least one strategy"),
            EmptySeeds => write!(f, "scenario needs at least one seed"),
            DuplicateSeed(s) => write!(f, "seed {s} listed twice"),
            Replication {
                replication,
                num_servers,
            } => write!(
                f,
                "replication {replication} invalid for {num_servers} servers"
            ),
            NoPartitions => write!(f, "need at least one partition"),
            Load(l) => write!(f, "offered load {l} outside (0, {MAX_OFFERED_LOAD})"),
            LoadInfeasible {
                load,
                effective_load,
            } => write!(
                f,
                "load {load} is {effective_load:.2} of the degraded cluster's capacity — \
                 at or above the {MAX_OFFERED_LOAD} bound, infeasible"
            ),
            ServerIndexOutOfRange {
                server,
                num_servers,
            } => write!(
                f,
                "fault references server {server} but the cluster has {num_servers}"
            ),
            BadSpeedFactor { server, speed } => write!(
                f,
                "speed factor {speed} for server {server} must be positive and finite"
            ),
            SpeedFactorCount { given, num_servers } => write!(
                f,
                "{given} speed factors for a {num_servers}-server cluster"
            ),
            DuplicateDegradedServer(s) => write!(f, "server {s} degraded twice"),
            BadSpikeProbability(p) => write!(f, "spike probability {p} outside [0, 1]"),
            SpikeRangeInverted { lo_us, hi_us } => {
                write!(f, "spike range inverted: [{lo_us}, {hi_us}]us")
            }
            SpikeNeedsConstantBase => {
                write!(f, "the spike fault requires a Constant base latency model")
            }
            Warmup(w) => write!(f, "warm-up fraction {w} outside [0, 0.9)"),
            AxisValue {
                axis: "load",
                value,
            } => {
                write!(
                    f,
                    "sweep axis load: value {value} outside (0, {MAX_OFFERED_LOAD})"
                )
            }
            AxisValue { axis, value } => {
                write!(f, "sweep axis {axis}: value {value} out of domain")
            }
            DuplicateAxisValue { axis, value } => {
                write!(f, "sweep axis {axis}: value {value} listed twice")
            }
            HedgeAxisWithoutHedgedStrategy => write!(
                f,
                "hedge_delay_us sweep axis needs at least one Hedged strategy"
            ),
            ShedAxisWithoutQueue => {
                write!(f, "shed_above sweep axis needs a queue spec to override")
            }
            BadQueueSpec(msg) => write!(f, "queue spec: {msg}"),
            CoDelKnobsIncomplete => write!(
                f,
                "codel_target_us and codel_interval_us must be set together"
            ),
            BadTimeoutSpec(msg) => write!(f, "timeout spec: {msg}"),
            MultiCell { cells } => write!(
                f,
                "scenario lowers to {cells} sweep cells; a single cell is required here"
            ),
            RtUnsupported { what } => {
                write!(f, "the live rt backend cannot honor {what}")
            }
            RtRunFailed { cause } => {
                write!(f, "a live rt run failed: {cause}")
            }
            Config(msg) => write!(f, "invalid configuration: {msg}"),
            Parse(msg) => write!(f, "spec parse error: {msg}"),
            Io(msg) => write!(f, "spec I/O error: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}
