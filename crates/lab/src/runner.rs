//! Executes lowered scenarios through the existing parallel multi-seed
//! runner, one grid cell at a time.

use crate::error::ScenarioError;
use crate::spec::{CellAxes, ScenarioCell, ScenarioSpec};
use brb_core::engine::EngineWorld;
use brb_core::experiment::{
    run_experiment_on_trace, run_strategies_multi_seed, RunResult, StrategySummary,
};
use brb_workload::Trace;

/// The outcome of one grid cell: per-strategy summaries across seeds.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cell index in grid order.
    pub index: usize,
    /// The axis values the cell ran at.
    pub axes: CellAxes,
    /// One summary per strategy, in spec order.
    pub summaries: Vec<StrategySummary>,
}

/// Runs every cell of a validated spec. Cells run in spec order; within
/// a cell the (strategy × seed) grid fans out across worker threads
/// (`BRB_THREADS` overrides), byte-identical to a sequential run.
pub fn run_spec(spec: &ScenarioSpec) -> Result<Vec<CellResult>, ScenarioError> {
    run_spec_with_progress(spec, |_, _| {})
}

/// [`run_spec`] with a callback invoked before each cell runs
/// (`(cell_index, num_cells)` — the CLI uses it for progress lines).
pub fn run_spec_with_progress(
    spec: &ScenarioSpec,
    mut progress: impl FnMut(usize, usize),
) -> Result<Vec<CellResult>, ScenarioError> {
    let cells = spec.lower()?;
    let num_cells = cells.len();
    cells
        .into_iter()
        .map(|cell| {
            progress(cell.index, num_cells);
            let summaries = if spec.replay {
                replay_cell(&cell)
            } else {
                run_strategies_multi_seed(&cell.base, &cell.strategies, &cell.seeds)
            };
            Ok(CellResult {
                index: cell.index,
                axes: cell.axes,
                summaries,
            })
        })
        .collect()
}

/// Record/replay mode: generate each seed's trace once, round-trip it
/// through the JSONL wire format, and drive every strategy from the
/// replayed bytes. Runs sequentially — the mode exists to exercise the
/// production-trace path, not to win benchmarks.
fn replay_cell(cell: &ScenarioCell) -> Vec<StrategySummary> {
    // runs[strategy][seed], strategy-major like the sweep runner.
    let mut runs: Vec<Vec<RunResult>> = cell.strategies.iter().map(|_| Vec::new()).collect();
    for &seed in &cell.seeds {
        let mut gen_cfg = cell.base.clone();
        gen_cfg.seed = seed;
        let trace = Trace::new(EngineWorld::generate_trace(&gen_cfg));
        // The round trip is the point: replayed bytes, not shared memory.
        let mut buf = Vec::new();
        trace
            .write_jsonl(&mut buf)
            .expect("serialize trace to memory");
        let replayed = Trace::read_jsonl(buf.as_slice()).expect("reparse serialized trace");
        assert_eq!(
            trace.len(),
            replayed.len(),
            "trace changed length through JSONL"
        );
        for (si, strategy) in cell.strategies.iter().enumerate() {
            let cfg = cell.config_for(strategy.clone(), seed);
            runs[si].push(run_experiment_on_trace(cfg, replayed.tasks.clone()));
        }
    }
    runs.into_iter().map(StrategySummary::from_runs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use brb_core::config::Strategy;

    fn tiny(name: &str) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
            .tasks(800)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3(), Strategy::equal_max_model()])
            .seeds(&[1])
    }

    #[test]
    fn sweep_produces_a_result_per_cell() {
        // Wide load gap + enough tasks that the p99 ordering is not a
        // coin flip at this scale.
        let spec = tiny("sweep")
            .tasks(2_500)
            .sweep_load(&[0.3, 0.8])
            .build()
            .unwrap();
        let results = run_spec(&spec).unwrap();
        assert_eq!(results.len(), 2);
        for (i, cell) in results.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.summaries.len(), 2);
            for s in &cell.summaries {
                assert_eq!(s.runs.len(), 1);
                assert!(s.p99_ms.mean >= s.p50_ms.mean);
            }
        }
        // Higher load must not make the tail cheaper.
        assert!(
            results[1].summaries[0].p99_ms.mean > results[0].summaries[0].p99_ms.mean,
            "p99 should grow with load"
        );
    }

    #[test]
    fn replay_mode_matches_generated_mode() {
        // The same scenario with and without the JSONL round trip must
        // produce identical numbers (replay is bit-faithful).
        let direct = run_spec(&tiny("direct").build().unwrap()).unwrap();
        let replayed = run_spec(&tiny("replayed").replay(true).build().unwrap()).unwrap();
        for (d, r) in direct[0].summaries.iter().zip(&replayed[0].summaries) {
            assert_eq!(d.strategy, r.strategy);
            assert_eq!(
                serde_json::to_string(&d.runs).unwrap(),
                serde_json::to_string(&r.runs).unwrap(),
                "replay diverged for {}",
                d.strategy
            );
        }
    }

    #[test]
    fn progress_callback_sees_every_cell() {
        let spec = tiny("progress")
            .sweep_load(&[0.3, 0.5, 0.7])
            .build()
            .unwrap();
        let mut seen = Vec::new();
        run_spec_with_progress(&spec, |i, n| seen.push((i, n))).unwrap();
        assert_eq!(seen, vec![(0, 3), (1, 3), (2, 3)]);
    }
}
