//! # brb-lab — the declarative scenario layer
//!
//! Experiments used to be ad-hoc imperative mutation of
//! `ExperimentConfig` copy-pasted across examples, tests, and benches.
//! This crate makes a scenario — cluster + workload + fault injections +
//! strategy set + seeds + sweep axes — a *value*:
//!
//! * [`ScenarioSpec`] is serde-round-trippable (TOML and JSON) and
//!   lowers to a grid of concrete `ExperimentConfig` cells
//!   ([`ScenarioSpec::lower`]).
//! * [`ScenarioBuilder`] is the fluent construction path with typed
//!   validation errors ([`ScenarioError`]) instead of downstream panics.
//! * [`registry`] names the presets (`figure2`, `figure2-small`,
//!   `degraded-node`, `transient-spike`, `playlist`, `hedging-runaway`,
//!   `trace-replay`) so they are data, not constructors.
//! * [`runner::run_spec`] drives the grid through the parallel
//!   multi-seed runner; [`rt_backend::run_spec_rt`] drives it through
//!   the live threaded runtime (`brb-rt`) instead;
//!   [`report::write_jsonl`] emits the stable JSON-lines report for
//!   either backend.
//! * The `brb-lab` binary wires it together:
//!   `brb-lab run figure2-small`, `brb-lab run my-spec.toml`,
//!   `brb-lab list`, `brb-lab show <name>`.
//! * [`analysis`] turns reports into decisions: paired A/B comparison
//!   against a baseline with significance (`brb-lab compare`), and
//!   capacity-knee reports over a load sweep (`brb-lab capacity`).
//!
//! ```no_run
//! use brb_lab::{registry, runner, report};
//!
//! let spec = registry::builder("figure2-small").unwrap()
//!     .tasks(2_000)
//!     .build().unwrap();
//! let results = runner::run_spec(&spec).unwrap();
//! println!("{}", report::to_jsonl_string(&spec, &results));
//! ```

pub mod analysis;
pub mod builder;
pub mod error;
pub mod registry;
pub mod report;
pub mod rt_backend;
pub mod runner;
pub mod spec;

pub use analysis::{
    capacity_report, compare_report, parse_jsonl, AnalysisError, CapacityOptions, CapacityReport,
    CompareOptions, CompareReport, CAPACITY_SCHEMA, COMPARE_SCHEMA,
};
pub use builder::ScenarioBuilder;
pub use error::ScenarioError;
pub use report::REPORT_SCHEMA;
pub use runner::CellResult;
pub use spec::{
    CellAxes, DegradedServer, FaultSpec, QueueSpec, RunSpec, ScenarioCell, ScenarioSpec,
    SpikeFault, SweepSpec, TimeoutSpec,
};
