//! The live-runtime execution backend: lowers scenario cells onto a
//! threaded [`brb_rt::RtCluster`] and reports through the same
//! `brb-lab/report-v1` pipeline as the simulator.
//!
//! `brb-lab run <scenario> --backend rt` routes here. Each lowered cell
//! becomes, per (strategy × seed), a fresh in-process cluster driven by
//! the **open-loop** Poisson load generator at the cell's offered load —
//! latency is recorded from intended arrivals, the measurement model the
//! simulator uses (a closed-loop harness would coordinated-omit queueing
//! delay and make live numbers incomparable to simulated ones).
//!
//! ## What the live backend can and cannot honor
//!
//! Axes lower faithfully where real threads can express them: cluster
//! shape (servers / cores / replication), offered load (arrival rate
//! against the service model's capacity), fan-out sweeps, scheduling
//! policy, selector choice, forecast quality, the constant mesh
//! latency (accounted into every recorded latency as a request +
//! response hop — a uniform shift is exact for a constant-latency
//! model, so nothing sleeps for it), and the **overload lane**: bounded
//! server queues with watermark shedding and CoDel run on real sojourn
//! timestamps, client timeouts are wall-clock deadline timers with the
//! simulator's capped-exponential budgeted retries, and every run is
//! checked against the conservation contract
//! `completed + dropped + timed_out + shed == issued`. Degraded-server
//! speed factors divide live service times exactly like the simulator's.
//!
//! The complete figure-2 strategy set now lowers **natively**:
//! `Credits` spawns the runtime's controller thread (the *same*
//! `brb-sched` allocation math the simulator calls, fed by real demand
//! reports and router congestion signals) with per-client token-bucket
//! admission; `Model` runs the single cross-server queue as the
//! runtime's work-pull global queue; and `Hedged` arms real hedge
//! timers with first-response-wins and duplicate-aware cancellation
//! (the loser is de-queued at the router or discarded on completion,
//! with its selector accounting released either way).
//!
//! Everything else fails with a typed [`ScenarioError::RtUnsupported`]
//! instead of a panic or a silent approximation:
//!
//! * the oracle selector (needs instantaneous global queue state),
//! * non-constant latency models, telemetry snapshots, replay mode,
//! * per-priority drop/shed accounting (`priority_stats` — the live
//!   transport does not tag failures with engine priority classes).
//!
//! Two mappings remain deliberate approximations and are documented in
//! the report semantics (`crates/rt/README.md`): playlist workloads
//! flatten to the SoundCloud fan-out mixture over a uniform key
//! universe (synthetic workloads keep their Zipf key popularity and
//! service noise is sampled live from the same model the simulator
//! draws), and transient latency spikes become extra *service* time
//! held by the worker — the in-process transport has no wire to delay,
//! so a spike occupies the server instead of only the message.
//!
//! A live run that dies mid-flight — a worker or router thread panics,
//! or the cluster shuts down under a waiting task — surfaces as
//! [`ScenarioError::RtRunFailed`]; the panic-guarded runtime converts
//! what used to be a hang into a typed failure.

use crate::error::ScenarioError;
use crate::runner::CellResult;
use crate::spec::{ScenarioCell, ScenarioSpec};
use brb_core::config::{ExperimentConfig, SelectorKind, Strategy, WorkloadKind};
use brb_core::experiment::{OverloadStats, RunResult, StrategySummary};
use brb_net::LatencyModel;
use brb_rt::{
    try_run_load, LoadGenConfig, LoadMode, RtCluster, RtClusterConfig, RtCreditsConfig,
    RtQueueConfig, RtQueueMode, RtTimeoutConfig, SpikeModel, WorkModel,
};
use brb_sched::{CreditsConfig, PolicyKind};
use brb_select::SelectorSpec;
use brb_workload::FanoutDist;

fn unsupported(what: impl Into<String>) -> ScenarioError {
    ScenarioError::RtUnsupported { what: what.into() }
}

fn rt_failed(e: brb_rt::RtError) -> ScenarioError {
    ScenarioError::RtRunFailed {
        cause: e.to_string(),
    }
}

/// One strategy lowered to what the live client can run.
#[derive(Debug, Clone, Copy)]
struct RtStrategy {
    policy: PolicyKind,
    selector: SelectorSpec,
    /// `Some` spawns the credits controller thread; the per-client
    /// token-bucket admission then replaces `selector`.
    credits: Option<CreditsConfig>,
    /// Run the model realization's single cross-server work-pull queue.
    global_queue: bool,
    /// Arm live hedge timers at this delay.
    hedge_delay_ns: Option<u64>,
}

fn lower_selector(kind: SelectorKind) -> Result<SelectorSpec, ScenarioError> {
    match kind {
        SelectorKind::Random => Ok(SelectorSpec::Random),
        SelectorKind::RoundRobin => Ok(SelectorSpec::RoundRobin),
        SelectorKind::LeastOutstanding => Ok(SelectorSpec::LeastOutstanding),
        SelectorKind::C3 => Ok(SelectorSpec::C3),
        SelectorKind::Oracle => Err(unsupported(
            "the oracle selector (it reads instantaneous global queue state \
             only the simulator can provide)",
        )),
    }
}

fn lower_strategy(strategy: &Strategy) -> Result<RtStrategy, ScenarioError> {
    let direct = |policy: PolicyKind, selector: SelectorSpec| RtStrategy {
        policy,
        selector,
        credits: None,
        global_queue: false,
        hedge_delay_ns: None,
    };
    match strategy {
        Strategy::Direct {
            selector,
            policy,
            priority_queues,
        } => {
            // The live server always schedules through its stable
            // priority queue; with FIFO priorities that *is* FIFO order,
            // but a non-FIFO policy cannot be combined with FIFO servers
            // without a server mode the runtime does not have.
            if !priority_queues && *policy != PolicyKind::Fifo {
                return Err(unsupported(format!(
                    "direct dispatch with {policy:?} priorities but FIFO servers \
                     (live servers always honor priorities)"
                )));
            }
            Ok(direct(*policy, lower_selector(*selector)?))
        }
        // Native credits: the controller thread runs the same brb-sched
        // allocation math the simulator calls; the configured selector
        // is irrelevant because per-client token-bucket admission
        // replaces it at client construction.
        Strategy::Credits { policy, credits } => Ok(RtStrategy {
            credits: Some(*credits),
            ..direct(*policy, SelectorSpec::LeastOutstanding)
        }),
        // Native model realization: one cross-server work-pull queue.
        // Round-robin selection only spreads the *entry point*; service
        // order is owned by the shared queue, as in the simulator.
        Strategy::Model { policy } => Ok(RtStrategy {
            global_queue: true,
            ..direct(*policy, SelectorSpec::RoundRobin)
        }),
        Strategy::Hedged { selector, delay_us } => Ok(RtStrategy {
            hedge_delay_ns: Some(delay_us * 1_000),
            ..direct(PolicyKind::Fifo, lower_selector(*selector)?)
        }),
    }
}

/// The live workload shape: fan-out distribution, key universe and key
/// popularity. Synthetic workloads keep their Zipf exponent; playlists
/// flatten to the SoundCloud fan-out mixture over uniform keys (the
/// documented approximation).
fn lower_workload_kind(kind: &WorkloadKind) -> (FanoutDist, u64, f64) {
    match kind {
        WorkloadKind::Synthetic {
            fanout,
            num_keys,
            zipf_exponent,
        } => (fanout.clone(), *num_keys, *zipf_exponent),
        WorkloadKind::Playlist { num_tracks, .. } => {
            (FanoutDist::soundcloud_like(), *num_tracks, 0.0)
        }
    }
}

/// Checks a lowered cell's base config for simulator-only machinery and
/// produces the live cluster construction parameters.
fn lower_cluster(base: &ExperimentConfig) -> Result<RtClusterConfig, ScenarioError> {
    let cluster = &base.cluster;
    // Request + response hop of the mesh's base latency, accounted into
    // recorded latencies (a uniform shift leaves queueing dynamics
    // untouched, so adding it is exact for a constant-latency model).
    // Spikes become extra worker-held service time — the documented
    // approximation (there is no wire to delay in-process).
    let (network_rtt_ns, spike) = match cluster.latency {
        LatencyModel::Constant { delay_ns } => (2 * delay_ns, None),
        LatencyModel::Spiky {
            base_ns,
            p_spike,
            spike_lo_ns,
            spike_hi_ns,
        } => (
            2 * base_ns,
            Some(SpikeModel {
                p_spike,
                extra_lo_ns: spike_lo_ns,
                extra_hi_ns: spike_hi_ns,
            }),
        ),
        _ => {
            return Err(unsupported(
                "non-constant latency models (the in-process transport replaces the mesh)",
            ))
        }
    };
    if base.telemetry_interval_ns.is_some() {
        return Err(unsupported("telemetry snapshots (virtual-time sampling)"));
    }
    if base.overload.queue.is_some_and(|q| q.priority_stats) {
        return Err(unsupported(
            "per-priority drop/shed accounting (the live transport does not \
             tag failures with engine priority classes)",
        ));
    }
    let queue = base.overload.queue.map(|q| RtQueueConfig {
        bound: q.bound(),
        codel: q.codel,
    });
    let timeout = base.overload.timeout.map(|t| RtTimeoutConfig {
        timeout_ns: t.timeout_us * 1_000,
        max_retries: t.max_retries,
        backoff_base_ns: t.backoff_base_us * 1_000,
        backoff_cap_ns: t.backoff_cap_us * 1_000,
        retry_budget_percent: t.retry_budget_percent,
    });
    // Nominal-speed clusters keep the empty vector (the legacy shape);
    // degraded ones hand the factors to the live workers, which divide
    // service times by them exactly like the simulator does.
    let speed_factors = if cluster.server_speed_factors.iter().all(|&f| f == 1.0) {
        Vec::new()
    } else {
        cluster.server_speed_factors.clone()
    };
    let service = cluster.service_model(base.workload.sizes.mean_bytes());
    Ok(RtClusterConfig {
        num_servers: cluster.num_servers,
        workers_per_server: cluster.cores_per_server,
        replication: cluster.replication,
        num_partitions: Some(cluster.num_partitions),
        policy: PolicyKind::Fifo, // overridden per strategy below
        selector: SelectorSpec::LeastOutstanding, // overridden per strategy
        work: WorkModel::SimulateService(service),
        store_shards: 16,
        sizes: base.workload.sizes,
        forecast: cluster.forecast,
        num_clients: cluster.num_clients,
        network_rtt_ns,
        queue_mode: RtQueueMode::PerServer, // overridden per strategy
        credits: None,                      // overridden per strategy
        hedge_delay_ns: None,               // overridden per strategy
        queue,
        timeout,
        speed_factors,
        spike,
        panic_on_key: None,
    })
}

/// Runs one (cell × strategy × seed) against a fresh live cluster.
fn run_one(
    cell: &ScenarioCell,
    cluster_template: &RtClusterConfig,
    strategy: &Strategy,
    rt: RtStrategy,
    seed: u64,
) -> Result<RunResult, ScenarioError> {
    let mut config = cluster_template.clone();
    config.policy = rt.policy;
    config.selector = rt.selector;
    config.queue_mode = if rt.global_queue {
        RtQueueMode::Global
    } else {
        RtQueueMode::PerServer
    };
    config.credits = rt.credits.map(|cc| RtCreditsConfig {
        config: cc,
        server_capacity_rps: cell.base.cluster.server_capacity_rps(),
        congestion_queue_threshold: cell.base.congestion_queue_threshold,
    });
    if config.credits.is_some() {
        // The load generator drives ONE aggregate client carrying the
        // whole offered load, so the credits lane's fair-share seeding
        // and outstanding weighting must describe that real population
        // of one — seeding buckets at `capacity / sim_num_clients`
        // would starve the only client N-fold until the controller
        // adapts. The sim's logical client count still shapes the
        // workload itself (task rate, fanout).
        config.num_clients = 1;
    }
    config.hedge_delay_ns = rt.hedge_delay_ns;
    let overload_lane = config.queue.is_some() || config.timeout.is_some();

    let (fanout, key_range, key_zipf) = lower_workload_kind(&cell.base.workload.kind);
    let task_rate = cell.base.workload.task_rate(&cell.base.cluster);
    let cluster = RtCluster::start(config);
    cluster.populate_etc(key_range);
    let report = try_run_load(
        &cluster,
        &LoadGenConfig {
            tasks: cell.base.workload.num_tasks,
            mode: LoadMode::Open {
                task_rate_per_sec: task_rate,
            },
            fanout,
            key_range,
            key_zipf,
            seed,
        },
    )
    .map_err(rt_failed)?;
    cluster.shutdown_checked().map_err(rt_failed)?;

    // The live lane fills every counter it actually measures — including
    // the credits lane (demand reports, congestion signals) and the
    // hedging lane (hedges issued, duplicate responses), which are now
    // native — the mapping is documented next to the report-v1 schema
    // (crates/rt/README.md). With the overload knobs off the loadgen
    // guarantees `completed == tasks` and all-zero failure counters, so
    // the report stays byte-identical to the legacy shape
    // (`overload: None` omits the additive keys).
    let overload = overload_lane.then_some(OverloadStats {
        goodput: report.goodput,
        dropped: report.dropped,
        timed_out: report.timed_out,
        retries: report.retries,
        shed: report.shed,
    });
    Ok(RunResult {
        strategy: strategy.name(),
        seed,
        task_latency_ms: report.task_latency_ms,
        request_latency_ms: report.request_latency_ms,
        hold_time_ms: None,
        utilization: report.utilization,
        completed_tasks: report.completed,
        measured_tasks: report.task_latency_ms.count,
        sim_secs: report.wall.as_secs_f64(),
        events: 0,
        dispatched: report.requests,
        congestion_signals: report.congestion_signals,
        demand_reports: report.demand_reports,
        hedges_issued: report.hedges_issued,
        duplicate_responses: report.duplicate_responses,
        overload,
        priority_classes: None,
    })
}

/// Runs every cell of a validated spec on the live runtime. Cells (and
/// the seeds within them) run sequentially: live runs share the
/// machine's cores, so parallel cells would contend and corrupt each
/// other's latencies.
pub fn run_spec_rt(spec: &ScenarioSpec) -> Result<Vec<CellResult>, ScenarioError> {
    run_spec_rt_with_progress(spec, |_, _| {})
}

/// [`run_spec_rt`] with a per-cell progress callback
/// (`(cell_index, num_cells)`, same contract as the simulator runner's).
pub fn run_spec_rt_with_progress(
    spec: &ScenarioSpec,
    mut progress: impl FnMut(usize, usize),
) -> Result<Vec<CellResult>, ScenarioError> {
    if spec.replay {
        return Err(unsupported("replay mode (trace JSONL round-trips)"));
    }
    let cells = spec.lower()?;
    let num_cells = cells.len();
    cells
        .into_iter()
        .map(|cell| {
            progress(cell.index, num_cells);
            let cluster_template = lower_cluster(&cell.base)?;
            // Reject every unsupported strategy *before* any run starts,
            // so a failure cannot waste a half-executed grid.
            let lowered: Vec<RtStrategy> = cell
                .strategies
                .iter()
                .map(lower_strategy)
                .collect::<Result<_, _>>()?;
            let summaries = cell
                .strategies
                .iter()
                .zip(&lowered)
                .map(|(strategy, &rt)| {
                    let runs: Vec<RunResult> = cell
                        .seeds
                        .iter()
                        .map(|&seed| run_one(&cell, &cluster_template, strategy, rt, seed))
                        .collect::<Result<_, _>>()?;
                    Ok(StrategySummary::from_runs(runs))
                })
                .collect::<Result<_, ScenarioError>>()?;
            Ok(CellResult {
                index: cell.index,
                axes: cell.axes,
                summaries,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use brb_core::config::{SelectorKind, Strategy};
    use brb_sched::PolicyKind;

    fn tiny() -> ScenarioBuilder {
        ScenarioBuilder::new("rt-tiny")
            .servers(3)
            .cores(2)
            .partitions(3)
            .replication(2)
            .service_rate(20_000.0) // 50µs mean service: fast live runs
            .tasks(150)
            .load(0.5)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3()])
            .seeds(&[1])
    }

    #[test]
    fn tiny_spec_runs_live() {
        let spec = tiny().build().unwrap();
        let results = run_spec_rt(&spec).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].summaries.len(), 1);
        let run = &results[0].summaries[0].runs[0];
        assert_eq!(run.strategy, "C3");
        assert_eq!(run.completed_tasks, 150);
        assert_eq!(run.measured_tasks, 150);
        assert_eq!(run.task_latency_ms.count, 150);
        assert!(run.task_latency_ms.p50 > 0.0);
        assert!(run.dispatched >= 150);
        assert!(run.sim_secs > 0.0);
        assert!(run.utilization > 0.0);
    }

    #[test]
    fn faults_run_live() {
        // Degraded speeds divide live service times; spikes become extra
        // worker-held time. Both lanes complete at modest load with the
        // legacy report shape (no overload knobs ⇒ no additive keys).
        let degraded = tiny().load(0.3).degrade_server(0, 0.5).build().unwrap();
        let results = run_spec_rt(&degraded).unwrap();
        let run = &results[0].summaries[0].runs[0];
        assert_eq!(run.completed_tasks, 150);
        assert!(run.overload.is_none());

        let spiky = tiny().load(0.3).spike(0.05, 200, 500).build().unwrap();
        let results = run_spec_rt(&spiky).unwrap();
        let run = &results[0].summaries[0].runs[0];
        assert_eq!(run.completed_tasks, 150);
        assert!(run.overload.is_none());
    }

    #[test]
    fn overload_knobs_run_live_and_conserve() {
        let spec = tiny()
            .load(1.2)
            .bounded_queue(crate::spec::QueueSpec {
                capacity: 8,
                shed_above: Some(6),
                codel_target_us: None,
                codel_interval_us: None,
                priority_stats: false,
            })
            .timeouts(crate::spec::TimeoutSpec {
                timeout_us: 5_000,
                max_retries: 1,
                backoff_base_us: 100,
                backoff_cap_us: 1_000,
                retry_budget_percent: Some(10),
            })
            .build()
            .unwrap();
        let results = run_spec_rt(&spec).unwrap();
        let run = &results[0].summaries[0].runs[0];
        let o = run.overload.expect("overload lane on ⇒ stats present");
        assert_eq!(
            run.completed_tasks as u64 + o.dropped + o.timed_out + o.shed,
            150,
            "live conservation must hold in the report"
        );
        assert!(o.goodput > 0.0);
        assert!(run.priority_classes.is_none());
    }

    #[test]
    fn load_axis_lowers_to_arrival_rates() {
        let spec = tiny().sweep_load(&[0.3, 0.6]).build().unwrap();
        let results = run_spec_rt(&spec).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].axes.load, Some(0.3));
        assert_eq!(results[1].axes.load, Some(0.6));
    }

    #[test]
    fn credits_strategy_runs_live_with_native_controller() {
        // Demand reports ride the 100ms measurement tick, so the run
        // must span several ticks to observe one regardless of machine
        // load — 2000 tasks at this arrival rate is a few hundred ms.
        let spec = tiny()
            .tasks(2_000)
            .strategies(vec![Strategy::equal_max_credits()])
            .build()
            .unwrap();
        let results = run_spec_rt(&spec).unwrap();
        let run = &results[0].summaries[0].runs[0];
        assert_eq!(run.completed_tasks, 2_000);
        assert!(
            run.demand_reports > 0,
            "native credits lane must count real demand reports, got 0"
        );
    }

    #[test]
    fn model_strategy_runs_live_on_global_queue() {
        let spec = tiny()
            .strategies(vec![Strategy::equal_max_model()])
            .build()
            .unwrap();
        let results = run_spec_rt(&spec).unwrap();
        let run = &results[0].summaries[0].runs[0];
        assert_eq!(run.completed_tasks, 150);
        assert_eq!(run.measured_tasks, 150);
    }

    #[test]
    fn hedged_strategy_runs_live_and_conserves() {
        // Spikes give hedging something to duplicate: p_spike = 1 adds
        // 2ms of worker-held time the 50µs forecast can't see, so the
        // 500µs hedge timer fires on every un-settled straggler (capped
        // by the 5% budget). Conservation must hold even with losing
        // duplicates discarded mid-run.
        let spec = tiny()
            .load(0.3)
            .spike(1.0, 2_000, 2_000)
            .strategies(vec![Strategy::Hedged {
                selector: SelectorKind::LeastOutstanding,
                delay_us: 500,
            }])
            .build()
            .unwrap();
        let results = run_spec_rt(&spec).unwrap();
        let run = &results[0].summaries[0].runs[0];
        assert_eq!(run.strategy, "hedged(least-outstanding, 500us)");
        assert_eq!(run.completed_tasks, 150);
        assert!(
            run.hedges_issued > 0,
            "deterministic spikes must trigger at least one hedge"
        );
        assert!(run.duplicate_responses <= run.hedges_issued);
        assert!(run.overload.is_none(), "hedging alone keeps legacy shape");
    }

    #[test]
    fn unsupported_features_fail_typed() {
        let oracle = tiny()
            .strategies(vec![Strategy::Direct {
                selector: SelectorKind::Oracle,
                policy: PolicyKind::Fifo,
                priority_queues: false,
            }])
            .build()
            .unwrap();
        match run_spec_rt(&oracle) {
            Err(ScenarioError::RtUnsupported { what }) => assert!(what.contains("oracle")),
            other => panic!("expected RtUnsupported, got {other:?}"),
        }

        let replay = tiny().replay(true).build().unwrap();
        match run_spec_rt(&replay) {
            Err(ScenarioError::RtUnsupported { what }) => assert!(what.contains("replay")),
            other => panic!("expected RtUnsupported, got {other:?}"),
        }

        let priority_stats = tiny()
            .bounded_queue(crate::spec::QueueSpec {
                capacity: 64,
                shed_above: None,
                codel_target_us: None,
                codel_interval_us: None,
                priority_stats: true,
            })
            .build()
            .unwrap();
        match run_spec_rt(&priority_stats) {
            Err(ScenarioError::RtUnsupported { what }) => {
                assert!(what.contains("per-priority"))
            }
            other => panic!("expected RtUnsupported, got {other:?}"),
        }

        let fifo_servers_with_priorities = tiny()
            .strategies(vec![Strategy::Direct {
                selector: SelectorKind::Random,
                policy: PolicyKind::EqualMax,
                priority_queues: false,
            }])
            .build()
            .unwrap();
        match run_spec_rt(&fifo_servers_with_priorities) {
            Err(ScenarioError::RtUnsupported { what }) => assert!(what.contains("FIFO servers")),
            other => panic!("expected RtUnsupported, got {other:?}"),
        }
    }
}
