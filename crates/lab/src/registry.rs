//! Named scenario presets: the experiments this repo keeps reaching for,
//! as *data* rather than constructors. `brb-lab run <name>` executes
//! them; `brb-lab show <name>` prints the underlying spec.

use crate::builder::ScenarioBuilder;
use crate::error::ScenarioError;
use crate::spec::{QueueSpec, ScenarioSpec, TimeoutSpec};
use brb_core::config::{SelectorKind, Strategy, WorkloadKind};
use brb_sched::PolicyKind;

/// One registry entry.
struct Preset {
    name: &'static str,
    description: &'static str,
    build: fn() -> ScenarioBuilder,
}

/// The registry, in display order.
const PRESETS: &[Preset] = &[
    Preset {
        name: "figure2",
        description: "the paper's headline evaluation: five strategies, 500k tasks, six seeds",
        build: figure2,
    },
    Preset {
        name: "figure2-small",
        description: "scaled-down figure2 (8k tasks, catalog shrunk to match) for quick runs",
        build: figure2_small,
    },
    Preset {
        name: "playlist",
        description: "the motivating workload: playlist fan-outs, C3 vs task-aware BRB",
        build: playlist,
    },
    Preset {
        name: "degraded-node",
        description: "server 0 at half speed, nobody told the clients — adaptive vs oblivious",
        build: degraded_node,
    },
    Preset {
        name: "transient-spike",
        description: "rare 10-20ms network spikes at low load — hedging's canonical win",
        build: transient_spike,
    },
    Preset {
        name: "hedging-runaway",
        description: "hedge-delay sweep: aggressive triggers feed back into load and run away",
        build: hedging_runaway,
    },
    Preset {
        name: "trace-replay",
        description: "record/replay round trip: every strategy driven from identical JSONL bytes",
        build: trace_replay,
    },
    Preset {
        name: "live-smoke",
        description: "small cluster sized for wall-clock runs: FIFO vs BRB on sim or --backend rt",
        build: live_smoke,
    },
    Preset {
        name: "sustained-overload",
        description:
            "load swept through and past 1.0x against bounded CoDel'd queues: goodput holds",
        build: sustained_overload,
    },
    Preset {
        name: "retry-storm",
        description:
            "tight timeouts, eager retries, no bound: retries amplify offered load past 1.0x",
        build: retry_storm,
    },
    Preset {
        name: "load-shedding",
        description: "admission-control watermark sheds early so accepted work still finishes fast",
        build: load_shedding,
    },
    Preset {
        name: "priority-starvation",
        description:
            "shed-watermark sweep with per-class stats: who starves when admission tightens",
        build: priority_starvation,
    },
];

/// Every preset name, in display order.
pub fn names() -> Vec<&'static str> {
    PRESETS.iter().map(|p| p.name).collect()
}

/// The one-line description of a preset.
pub fn description(name: &str) -> Option<&'static str> {
    PRESETS
        .iter()
        .find(|p| p.name == name)
        .map(|p| p.description)
}

/// A builder primed with the named preset (customize, then `build()`).
pub fn builder(name: &str) -> Result<ScenarioBuilder, ScenarioError> {
    PRESETS
        .iter()
        .find(|p| p.name == name)
        .map(|p| (p.build)().describe(p.description))
        .ok_or_else(|| ScenarioError::UnknownPreset {
            name: name.to_string(),
            available: names(),
        })
}

/// The named preset's validated spec.
pub fn spec(name: &str) -> Result<ScenarioSpec, ScenarioError> {
    builder(name)?.build()
}

// ---------------------------------------------------------------------------
// Preset definitions
// ---------------------------------------------------------------------------

fn figure2() -> ScenarioBuilder {
    ScenarioBuilder::new("figure2")
        .strategies(Strategy::figure2_set())
        .seeds(&[1, 2, 3, 4, 5, 6])
}

fn figure2_small() -> ScenarioBuilder {
    ScenarioBuilder::new("figure2-small")
        .strategies(Strategy::figure2_set())
        .seeds(&[1, 2])
        .tasks(8_000)
        .scale_catalog(true)
}

fn playlist() -> ScenarioBuilder {
    ScenarioBuilder::new("playlist")
        .workload_kind(WorkloadKind::Playlist {
            num_tracks: 200_000,
            num_playlists: 20_000,
            playlist_zipf: 0.8,
        })
        .tasks(50_000)
        .strategies(vec![Strategy::c3(), Strategy::unif_incr_credits()])
        .seeds(&[7])
}

fn degraded_node() -> ScenarioBuilder {
    ScenarioBuilder::new("degraded-node")
        .tasks(20_000)
        .scale_catalog(true)
        // Keep offered load feasible for the weakened cluster.
        .load(0.6)
        .degrade_server(0, 0.5)
        .strategies(vec![
            Strategy::Direct {
                selector: SelectorKind::Random,
                policy: PolicyKind::Fifo,
                priority_queues: false,
            },
            Strategy::c3(),
            Strategy::equal_max_credits(),
            Strategy::equal_max_model(),
        ])
        .seeds(&[1, 2])
}

fn transient_spike() -> ScenarioBuilder {
    ScenarioBuilder::new("transient-spike")
        .tasks(4_000)
        .scale_catalog(true)
        // Moderate utilization: spare capacity absorbs the hedge load.
        .load(0.3)
        // 1% of messages eat a 10-20ms in-network spike, far above the
        // 5ms hedge trigger.
        .spike(0.01, 10_000, 20_000)
        .strategies(vec![
            Strategy::Direct {
                selector: SelectorKind::Random,
                policy: PolicyKind::Fifo,
                priority_queues: false,
            },
            Strategy::Hedged {
                selector: SelectorKind::Random,
                delay_us: 5_000,
            },
            Strategy::equal_max_credits(),
        ])
        .seeds(&[9, 10, 11])
}

fn hedging_runaway() -> ScenarioBuilder {
    ScenarioBuilder::new("hedging-runaway")
        .tasks(8_000)
        .scale_catalog(true)
        .strategies(vec![
            Strategy::Direct {
                selector: SelectorKind::LeastOutstanding,
                policy: PolicyKind::Fifo,
                priority_queues: false,
            },
            Strategy::hedged_default(),
        ])
        // Near-median triggers hedge almost everything: every hedge adds
        // load, which inflates latencies, which fires more hedges.
        .sweep_hedge_delay_us(&[800, 2_000, 5_000, 20_000])
        .seeds(&[1])
}

fn live_smoke() -> ScenarioBuilder {
    // Sized so the live backend finishes in seconds of wall-clock time
    // on a loaded machine: few workers, ~1.25ms mean services (mostly
    // slept through), and an offered load high enough that scheduling
    // policy is visible in the tail. Runs on both backends — the
    // sim-vs-rt concordance test drives exactly this scenario.
    ScenarioBuilder::new("live-smoke")
        .servers(3)
        .cores(2)
        .partitions(3)
        .replication(2)
        .service_rate(800.0)
        .tasks(1_000)
        .load(0.85)
        .scale_catalog(true)
        .strategies(vec![
            Strategy::Direct {
                selector: SelectorKind::Random,
                policy: PolicyKind::Fifo,
                priority_queues: false,
            },
            Strategy::Direct {
                selector: SelectorKind::LeastOutstanding,
                policy: PolicyKind::EqualMax,
                priority_queues: true,
            },
        ])
        .seeds(&[1])
}

fn sustained_overload() -> ScenarioBuilder {
    // The overload lane's headline scenario: offered load swept from
    // busy (0.9) through saturation (1.1) to well past it (1.3), with
    // every server queue bounded and CoDel keeping standing sojourn
    // near its 5ms target. The report's goodput/dropped columns show
    // the bounded system degrading gracefully where an unbounded one
    // just grows its queues without bound.
    ScenarioBuilder::new("sustained-overload")
        .tasks(8_000)
        .scale_catalog(true)
        .sweep_load(&[0.9, 1.1, 1.3])
        .bounded_queue(QueueSpec {
            capacity: 64,
            shed_above: None,
            codel_target_us: Some(5_000),
            codel_interval_us: Some(100_000),
            priority_stats: false,
        })
        // Generous timeout: drops surface as NACK-driven retries, and
        // the 10% budget keeps those retries from becoming their own
        // overload.
        .timeouts(TimeoutSpec {
            timeout_us: 50_000,
            max_retries: 1,
            backoff_base_us: 1_000,
            backoff_cap_us: 8_000,
            retry_budget_percent: Some(10),
        })
        .strategies(vec![
            Strategy::c3(),
            Strategy::equal_max_credits(),
            Strategy::equal_max_model(),
        ])
        .seeds(&[1, 2])
}

fn retry_storm() -> ScenarioBuilder {
    // The failure mode the retry budget exists for, reproduced without
    // one: queues unbounded, timeouts tight against the loaded tail,
    // three eager retries. Past saturation every timeout re-offers its
    // request, so dispatched climbs well above the issued request count
    // while goodput falls — the classic storm.
    ScenarioBuilder::new("retry-storm")
        .tasks(8_000)
        .scale_catalog(true)
        .sweep_load(&[0.9, 1.2])
        .timeouts(TimeoutSpec {
            timeout_us: 20_000,
            max_retries: 3,
            backoff_base_us: 500,
            backoff_cap_us: 4_000,
            retry_budget_percent: None,
        })
        .strategies(vec![
            Strategy::Direct {
                selector: SelectorKind::Random,
                policy: PolicyKind::Fifo,
                priority_queues: false,
            },
            Strategy::c3(),
        ])
        .seeds(&[1, 2])
}

fn load_shedding() -> ScenarioBuilder {
    // Admission control without AQM: arrivals finding ≥96 queued are
    // shed at the door (the same depth the credits realization calls
    // congested), so the queue never reaches its 128 hard cap and the
    // work that is accepted still completes with a bounded wait.
    ScenarioBuilder::new("load-shedding")
        .tasks(8_000)
        .scale_catalog(true)
        .sweep_load(&[0.9, 1.1, 1.3])
        .bounded_queue(QueueSpec {
            capacity: 128,
            shed_above: Some(96),
            codel_target_us: None,
            codel_interval_us: None,
            priority_stats: false,
        })
        .strategies(vec![Strategy::c3(), Strategy::equal_max_credits()])
        .seeds(&[1, 2])
}

fn priority_starvation() -> ScenarioBuilder {
    // ROADMAP item 4c: sweep the admission watermark at sustained
    // overload and split terminal failures by priority class. As the
    // watermark tightens (32 of 128), shedding moves from "rare" to
    // "routine", and the per-class split shows whether priority-blind
    // FIFO starves the high-priority classes a priority-queue policy
    // protects. Feed the report through `brb-lab compare` for the
    // per-class starvation curves.
    ScenarioBuilder::new("priority-starvation")
        .tasks(8_000)
        .scale_catalog(true)
        .load(1.2)
        .bounded_queue(QueueSpec {
            capacity: 128,
            shed_above: None, // each cell's watermark comes from the axis
            codel_target_us: None,
            codel_interval_us: None,
            priority_stats: true,
        })
        .sweep_shed_above(&[32, 64, 96])
        .strategies(vec![
            Strategy::Direct {
                selector: SelectorKind::Random,
                policy: PolicyKind::Fifo,
                priority_queues: false,
            },
            Strategy::Direct {
                selector: SelectorKind::LeastOutstanding,
                policy: PolicyKind::EqualMax,
                priority_queues: true,
            },
        ])
        .seeds(&[1, 2])
}

fn trace_replay() -> ScenarioBuilder {
    ScenarioBuilder::new("trace-replay")
        .tasks(5_000)
        .scale_catalog(true)
        .strategies(vec![Strategy::c3(), Strategy::equal_max_credits()])
        .seeds(&[33])
        .replay(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates_and_lowers() {
        for name in names() {
            let spec = spec(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, name);
            assert!(!spec.description.is_empty(), "{name} has no description");
            let cells = spec.lower().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!cells.is_empty());
        }
    }

    #[test]
    fn required_presets_exist() {
        for required in [
            "figure2",
            "figure2-small",
            "degraded-node",
            "transient-spike",
            "playlist",
            "hedging-runaway",
            "trace-replay",
            "sustained-overload",
            "retry-storm",
            "load-shedding",
            "priority-starvation",
        ] {
            assert!(names().contains(&required), "missing preset {required}");
        }
    }

    #[test]
    fn unknown_preset_lists_alternatives() {
        match builder("no-such-scenario") {
            Err(ScenarioError::UnknownPreset { name, available }) => {
                assert_eq!(name, "no-such-scenario");
                assert!(available.contains(&"figure2"));
            }
            other => panic!("expected UnknownPreset, got {other:?}"),
        }
    }

    #[test]
    fn hedging_runaway_sweeps_an_axis() {
        let spec = spec("hedging-runaway").unwrap();
        assert!(spec.sweep.num_cells() > 1);
    }

    #[test]
    fn overload_presets_sweep_past_saturation_with_their_knobs() {
        let sustained = spec("sustained-overload").unwrap();
        assert!(sustained.sweep.load.iter().any(|&l| l > 1.0));
        assert!(sustained.queue.unwrap().codel_target_us.is_some());
        assert!(sustained.timeout.unwrap().retry_budget_percent.is_some());

        let storm = spec("retry-storm").unwrap();
        assert!(storm.queue.is_none(), "the storm needs unbounded queues");
        let t = storm.timeout.unwrap();
        assert!(t.max_retries >= 2 && t.retry_budget_percent.is_none());

        let shedding = spec("load-shedding").unwrap();
        let q = shedding.queue.unwrap();
        assert!(q.shed_above.unwrap() < q.capacity);
        assert!(shedding.timeout.is_none());
    }

    #[test]
    fn priority_starvation_sweeps_the_watermark_with_class_stats() {
        let spec = spec("priority-starvation").unwrap();
        assert_eq!(spec.sweep.shed_above, vec![32, 64, 96]);
        assert!(spec.queue.unwrap().priority_stats);
        assert!(spec.workload.load > 1.0, "starvation needs overload");
        // Each cell's lowered queue carries that cell's watermark.
        let cells = spec.lower().unwrap();
        assert_eq!(cells.len(), 3);
        for (cell, want) in cells.iter().zip([32usize, 64, 96]) {
            assert_eq!(cell.axes.shed_above, Some(want));
            assert_eq!(
                cell.base.overload.queue.as_ref().unwrap().shed_above,
                Some(want)
            );
        }
    }

    #[test]
    fn presets_round_trip_through_toml() {
        for name in names() {
            let spec = spec(name).unwrap();
            let text = spec.to_toml().unwrap();
            let back =
                ScenarioSpec::from_toml(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            assert_eq!(
                serde_json::to_string(&spec).unwrap(),
                serde_json::to_string(&back).unwrap(),
                "{name} drifted through TOML"
            );
        }
    }
}
