//! Human-readable companions to the `compare-v1` / `capacity-v1` JSONL.
//!
//! The JSONL is for machines and golden pins; these renderers are for
//! the person deciding whether to ship a strategy. Deterministic like
//! everything else in the subsystem — fixed-precision formatting, no
//! timestamps.

use super::compare::CompareReport;
use super::concordance::CellConcordance;
use super::knee::CapacityReport;
use crate::spec::CellAxes;
use std::fmt::Write;

fn axes_label(axes: &CellAxes) -> String {
    let mut parts = Vec::new();
    if let Some(l) = axes.load {
        parts.push(format!("load={l}"));
    }
    if let Some(f) = axes.mean_fanout {
        parts.push(format!("fanout={f}"));
    }
    if let Some(h) = axes.hedge_delay_us {
        parts.push(format!("hedge={h}us"));
    }
    if let Some(w) = axes.shed_above {
        parts.push(format!("shed={w}"));
    }
    if parts.is_empty() {
        "(single cell)".into()
    } else {
        parts.join(", ")
    }
}

fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

fn fmt_signed_pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Renders a comparison (and its backend concordance, when the run
/// covered both backends) as markdown.
pub fn render_compare(report: &CompareReport, concordance: Option<&[CellConcordance]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Compare: {}", report.scenario);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Baseline **{}** on backend `{}`; seeds {:?}; {} bootstrap \
         resamples at {:.0}% confidence. Deltas are candidate − baseline \
         over per-seed paired differences (shared workload traces per \
         seed). **Significant** means the bootstrap CI excludes zero.",
        report.baseline,
        report.backend,
        report.seeds,
        report.resamples,
        report.confidence * 100.0
    );
    for line in &report.lines {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "## cell {} [{}] — {} vs {}",
            line.cell,
            axes_label(&line.axes),
            line.strategy,
            report.baseline
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| metric | baseline | candidate | delta | delta% | t | p | 95% CI | significant |"
        );
        let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|:---:|");
        for d in &line.deltas {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:+.3} | {} | {:.2} | {:.4} | [{:+.3}, {:+.3}] | {} |",
                d.metric,
                fmt_ms(d.baseline_mean),
                fmt_ms(d.mean),
                d.delta,
                fmt_signed_pct(d.delta_pct),
                d.t,
                d.p,
                d.ci_lo,
                d.ci_hi,
                if d.significant { "**yes**" } else { "no" }
            );
        }
        if let Some(classes) = &line.priority_classes {
            let _ = writeln!(out);
            let _ = writeln!(out, "Per-priority-class starvation (dropped + shed):");
            let _ = writeln!(out);
            let _ = writeln!(out, "| class | baseline | candidate | delta |");
            let _ = writeln!(out, "|---|---:|---:|---:|");
            for c in classes {
                let _ = writeln!(
                    out,
                    "| {} | {:.1} | {:.1} | {:+.1} |",
                    c.class, c.baseline_mean, c.mean, c.delta
                );
            }
        }
    }
    if let Some(cells) = concordance {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Backend concordance (sim vs rt)");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Kendall tau over strategy orderings; +1.00 = identical order."
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "| cell | axes | metric | tau |");
        let _ = writeln!(out, "|---|---|---|---:|");
        for c in cells {
            for (metric, tau) in &c.metrics {
                let shown = tau
                    .map(|t| format!("{t:+.2}"))
                    .unwrap_or_else(|| "n/a".into());
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} |",
                    c.cell,
                    axes_label(&c.axes),
                    metric,
                    shown
                );
            }
        }
    }
    out
}

/// Renders a capacity analysis as markdown.
pub fn render_capacity(report: &CapacityReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Capacity: {}", report.scenario);
    let _ = writeln!(out);
    let gates = match report.slo_p99_ms {
        Some(slo) => format!(
            "p99 SLO {slo} ms and delivered ratio within {}% of offered",
            report.tolerance_pct
        ),
        None => format!(
            "delivered ratio within {}% of offered (no p99 SLO)",
            report.tolerance_pct
        ),
    };
    let _ = writeln!(
        out,
        "Backend `{}`; seeds {:?}; loads {:?}. A load is safe while {gates}; \
         the knee is the first unsafe load.",
        report.backend, report.seeds, report.loads
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| strategy | knee | last safe load | headroom @ current |"
    );
    let _ = writeln!(out, "|---|---:|---:|---|");
    for line in &report.lines {
        let knee = line
            .knee_load
            .map(|k| format!("{k}"))
            .unwrap_or_else(|| "none".into());
        let safe = line
            .last_safe_load
            .map(|s| format!("{s}"))
            .unwrap_or_else(|| "none".into());
        let headroom = line
            .headroom
            .iter()
            .map(|h| {
                format!(
                    "{} {}×→{}",
                    if h.fits { "✓" } else { "✗" },
                    h.multiplier,
                    format_args!("{:.2}", h.projected_load)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            line.strategy, knee, safe, headroom
        );
    }
    for line in &report.lines {
        let _ = writeln!(out);
        let _ = writeln!(out, "## {}", line.strategy);
        let _ = writeln!(out);
        let _ = writeln!(out, "| load | p99 (ms) | delivered | safe |");
        let _ = writeln!(out, "|---:|---:|---:|:---:|");
        for p in &line.per_load {
            let _ = writeln!(
                out,
                "| {} | {} | {:.4} | {} |",
                p.load,
                fmt_ms(p.p99_ms),
                p.delivered_ratio,
                if p.safe { "yes" } else { "**no**" }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::compare::{compare_report, CompareOptions};
    use crate::analysis::knee::{capacity_report, CapacityOptions};
    use crate::builder::ScenarioBuilder;
    use crate::runner::run_spec;
    use brb_core::config::Strategy;

    #[test]
    fn renderers_emit_nonempty_tables() {
        let spec = ScenarioBuilder::new("md-test")
            .tasks(500)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3(), Strategy::equal_max_model()])
            .seeds(&[1, 2])
            .sweep_load(&[0.4, 0.8])
            .build()
            .unwrap();
        let results = run_spec(&spec).unwrap();
        let cmp = compare_report(&spec, &results, "c3", &CompareOptions::default()).unwrap();
        let md = render_compare(&cmp, None);
        assert!(md.contains("# Compare: md-test"));
        assert!(md.contains("| p99_ms |"));
        let cap = capacity_report(&spec, &results, &CapacityOptions::default()).unwrap();
        let md = render_capacity(&cap);
        assert!(md.contains("# Capacity: md-test"));
        assert!(md.contains("| load | p99 (ms) | delivered | safe |"));
    }
}
