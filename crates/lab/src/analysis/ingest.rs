//! Reading `brb-lab/report-v1` JSONL back into the `(spec, results)`
//! pair that produced it.
//!
//! The reader is the writer's inverse on *every* shape the writer can
//! emit — legacy, overload, and `priority_classes` records — and the
//! round trip is byte-exact (test-enforced against every registry
//! preset): re-serializing a parsed report reproduces the input bytes.
//! That property is what lets `compare --from report.jsonl` trust a
//! file as much as a fresh run.

use super::AnalysisError;
use crate::report::REPORT_SCHEMA;
use crate::runner::CellResult;
use crate::spec::{CellAxes, ScenarioSpec};
use brb_core::experiment::StrategySummary;
use serde::__private::{as_object, field};
use serde::Value;

/// A fully-parsed report: the header fields plus the reconstructed
/// per-cell results, ready for the same analysis paths a fresh run
/// flows through.
#[derive(Debug, Clone)]
pub struct ParsedReport {
    /// The header's schema tag (always [`REPORT_SCHEMA`] after a
    /// successful parse).
    pub schema: String,
    /// Scenario name.
    pub scenario: String,
    /// Strategy display names, in spec order.
    pub strategies: Vec<String>,
    /// Seeds each strategy ran under.
    pub seeds: Vec<u64>,
    /// The spec that produced the report.
    pub spec: ScenarioSpec,
    /// Reconstructed per-cell results, in grid order.
    pub results: Vec<CellResult>,
}

/// Parses a `report-v1` JSONL document.
pub fn parse_jsonl(text: &str) -> Result<ParsedReport, AnalysisError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or(AnalysisError::EmptyReport)?;
    let header: Value = serde_json::from_str(header_line)
        .map_err(|e| AnalysisError::Parse(format!("header: {e}")))?;
    let obj =
        as_object(&header, "report header").map_err(|e| AnalysisError::Parse(e.to_string()))?;
    let schema: String = field(obj, "schema").map_err(|_| AnalysisError::SchemaMismatch {
        found: "no schema tag".into(),
    })?;
    if schema != REPORT_SCHEMA {
        return Err(AnalysisError::SchemaMismatch { found: schema });
    }
    let scenario: String =
        field(obj, "scenario").map_err(|e| AnalysisError::Parse(e.to_string()))?;
    let cells: usize = field(obj, "cells").map_err(|e| AnalysisError::Parse(e.to_string()))?;
    let strategies: Vec<String> =
        field(obj, "strategies").map_err(|e| AnalysisError::Parse(e.to_string()))?;
    let seeds: Vec<u64> = field(obj, "seeds").map_err(|e| AnalysisError::Parse(e.to_string()))?;
    let spec: ScenarioSpec =
        field(obj, "spec").map_err(|e| AnalysisError::Parse(format!("spec echo: {e}")))?;

    let mut results: Vec<CellResult> = Vec::with_capacity(cells);
    for (i, line) in lines.enumerate() {
        let record: Value = serde_json::from_str(line)
            .map_err(|e| AnalysisError::Parse(format!("record {i}: {e}")))?;
        let obj =
            as_object(&record, "report record").map_err(|e| AnalysisError::Parse(e.to_string()))?;
        let cell: usize =
            field(obj, "cell").map_err(|e| AnalysisError::Parse(format!("record {i}: {e}")))?;
        let axes: CellAxes =
            field(obj, "axes").map_err(|e| AnalysisError::Parse(format!("record {i}: {e}")))?;
        let summary: StrategySummary =
            field(obj, "summary").map_err(|e| AnalysisError::Parse(format!("record {i}: {e}")))?;
        // Records arrive cell-major (the writer's order); open a new
        // cell whenever the index moves on.
        match results.last_mut() {
            Some(last) if last.index == cell => last.summaries.push(summary),
            _ => results.push(CellResult {
                index: cell,
                axes,
                summaries: vec![summary],
            }),
        }
    }
    if results.is_empty() {
        return Err(AnalysisError::EmptyReport);
    }
    if results.len() != cells {
        return Err(AnalysisError::Parse(format!(
            "header promises {cells} cells, records cover {}",
            results.len()
        )));
    }
    Ok(ParsedReport {
        schema,
        scenario,
        strategies,
        seeds,
        spec,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use crate::report::to_jsonl_string;
    use crate::runner::run_spec;
    use brb_core::config::Strategy;

    #[test]
    fn parse_inverts_write_byte_for_byte() {
        let spec = ScenarioBuilder::new("roundtrip")
            .tasks(500)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3(), Strategy::equal_max_model()])
            .seeds(&[1, 2])
            .sweep_load(&[0.4, 0.6])
            .build()
            .unwrap();
        let results = run_spec(&spec).unwrap();
        let text = to_jsonl_string(&spec, &results);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.scenario, "roundtrip");
        assert_eq!(parsed.seeds, vec![1, 2]);
        assert_eq!(parsed.results.len(), 2);
        assert_eq!(to_jsonl_string(&parsed.spec, &parsed.results), text);
    }

    #[test]
    fn schema_and_shape_errors_are_typed() {
        assert_eq!(parse_jsonl("").unwrap_err(), AnalysisError::EmptyReport);
        assert_eq!(
            parse_jsonl("{\"schema\":\"something-else\"}").unwrap_err(),
            AnalysisError::SchemaMismatch {
                found: "something-else".into()
            }
        );
        assert!(matches!(
            parse_jsonl("{\"cells\":1}").unwrap_err(),
            AnalysisError::SchemaMismatch { .. }
        ));
        assert!(matches!(
            parse_jsonl("not json").unwrap_err(),
            AnalysisError::Parse(_)
        ));
    }
}
