//! Paired A/B comparison against a baseline strategy, with significance.
//!
//! For every (cell × non-baseline strategy × metric) the report carries
//! the across-seed means, the paired delta, a Welch t test, and a
//! percentile-bootstrap confidence interval over the per-seed paired
//! differences. The `significant` verdict is the CI excluding zero —
//! with seeds in the single digits, the bootstrap over CRN-paired
//! diffs is the honest instrument; the t statistic rides along for
//! readers who want it.
//!
//! Output is `brb-lab/compare-v1` JSONL: a header echoing everything
//! needed to reproduce the analysis, then one line per
//! (cell × candidate strategy). Key order is the schema, golden-pinned
//! like `report-v1`. Deterministic end to end: the bootstrap streams
//! are seeded from the spec's seed list (see `super::seed_master`).

use super::pairing::{paired_metrics, paired_priority_classes, PairedMetric};
use super::{normalize_name, seed_master, stream_seed, AnalysisError};
use crate::runner::CellResult;
use crate::spec::{CellAxes, ScenarioSpec};
use brb_metrics::stats::{paired_bootstrap_ci, welch_t};
use serde::{Serialize, Value};
use std::io::{self, Write};

/// The schema tag written into every compare header.
pub const COMPARE_SCHEMA: &str = "brb-lab/compare-v1";

/// Analysis knobs (all deterministic).
#[derive(Debug, Clone)]
pub struct CompareOptions {
    /// Backend label echoed into the header (`sim`, `rt`, `both`, or
    /// `file` when ingested).
    pub backend: String,
    /// Bootstrap resamples per (cell × strategy × metric).
    pub resamples: u32,
    /// Confidence level for the bootstrap interval.
    pub confidence: f64,
    /// Attach order-statistic error bars (`quantile_ci`) on the
    /// per-seed quantile metrics of both sides. Additive: off keeps the
    /// output byte-identical to the legacy shape.
    pub quantile_ci: bool,
    /// Attach Benjamini–Hochberg `adjusted_p` over every p-value the
    /// report emits. Additive, like `quantile_ci`.
    pub adjust_p: bool,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            backend: "sim".into(),
            resamples: 2_000,
            confidence: 0.95,
            quantile_ci: false,
            adjust_p: false,
        }
    }
}

/// Order-statistic error bars on one metric, both sides: the
/// distribution-free CI over the per-seed values
/// ([`brb_metrics::quantile_ci`] at q = 0.5 — the across-seed central
/// value of the per-seed quantile estimates).
#[derive(Debug, Clone, Copy)]
pub struct QuantileBands {
    /// Baseline per-seed CI, low bound.
    pub baseline_ci_lo: f64,
    /// Baseline per-seed CI, high bound.
    pub baseline_ci_hi: f64,
    /// Candidate per-seed CI, low bound.
    pub ci_lo: f64,
    /// Candidate per-seed CI, high bound.
    pub ci_hi: f64,
}

/// One metric's delta vs the baseline.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name (a `report-v1` summary key).
    pub metric: &'static str,
    /// Baseline across-seed mean.
    pub baseline_mean: f64,
    /// Candidate across-seed mean.
    pub mean: f64,
    /// Mean paired difference, candidate − baseline.
    pub delta: f64,
    /// `delta` as a percentage of the baseline mean (0 on a zero base).
    pub delta_pct: f64,
    /// Welch t statistic (candidate vs baseline).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
    /// Bootstrap CI lower bound on the paired delta.
    pub ci_lo: f64,
    /// Bootstrap CI upper bound on the paired delta.
    pub ci_hi: f64,
    /// Whether the CI excludes zero.
    pub significant: bool,
    /// Benjamini–Hochberg FDR-adjusted p over the whole report's family
    /// of tests. `Some` only under `--adjust-p` (additive key).
    pub adjusted_p: Option<f64>,
    /// Per-strategy error bars on the quantile metrics. `Some` only
    /// under `--quantile-ci` (additive key) and only for metrics that
    /// are quantiles (p50/p95/p99).
    pub quantile_ci: Option<QuantileBands>,
}

/// One priority class's starvation delta vs the baseline
/// (dropped + shed counts, mean across seeds).
#[derive(Debug, Clone)]
pub struct ClassDelta {
    /// log₂ bucket of the priority key.
    pub class: u8,
    /// Baseline mean dropped+shed of this class.
    pub baseline_mean: f64,
    /// Candidate mean dropped+shed of this class.
    pub mean: f64,
    /// Mean paired difference, candidate − baseline.
    pub delta: f64,
}

/// One (cell × candidate strategy) comparison record.
#[derive(Debug, Clone)]
pub struct CompareLine {
    /// Cell index in grid order.
    pub cell: usize,
    /// The axis values the cell ran at.
    pub axes: CellAxes,
    /// Candidate strategy display name.
    pub strategy: String,
    /// Per-metric deltas, in metric order.
    pub deltas: Vec<MetricDelta>,
    /// Per-priority-class starvation deltas; `None` unless both sides
    /// carried the `priority_classes` split.
    pub priority_classes: Option<Vec<ClassDelta>>,
}

/// A complete comparison: header fields plus one line per
/// (cell × candidate).
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Scenario name.
    pub scenario: String,
    /// Resolved baseline strategy display name.
    pub baseline: String,
    /// Backend label.
    pub backend: String,
    /// Strategy display names (baseline included), in spec order.
    pub strategies: Vec<String>,
    /// Seeds each strategy ran under.
    pub seeds: Vec<u64>,
    /// Metric names compared, in line order.
    pub metrics: Vec<&'static str>,
    /// Bootstrap resamples used.
    pub resamples: u32,
    /// Confidence level used.
    pub confidence: f64,
    /// The spec that produced the underlying report.
    pub spec: ScenarioSpec,
    /// Comparison records, cell-major then spec strategy order.
    pub lines: Vec<CompareLine>,
}

/// Resolves a user-supplied baseline name against the report's strategy
/// set (normalized matching: `random_fifo` finds `random+FIFO`).
pub fn resolve_baseline(name: &str, strategies: &[String]) -> Result<String, AnalysisError> {
    let want = normalize_name(name);
    strategies
        .iter()
        .find(|s| normalize_name(s) == want)
        .cloned()
        .ok_or_else(|| AnalysisError::UnknownBaseline {
            name: name.to_string(),
            available: strategies.to_vec(),
        })
}

/// Builds the comparison over a scenario's results.
pub fn compare_report(
    spec: &ScenarioSpec,
    results: &[CellResult],
    baseline: &str,
    opts: &CompareOptions,
) -> Result<CompareReport, AnalysisError> {
    if results.is_empty() {
        return Err(AnalysisError::EmptyReport);
    }
    if spec.seeds.len() < 2 {
        return Err(AnalysisError::TooFewSeeds {
            seeds: spec.seeds.len(),
        });
    }
    let strategies: Vec<String> = results[0]
        .summaries
        .iter()
        .map(|s| s.strategy.clone())
        .collect();
    let baseline = resolve_baseline(baseline, &strategies)?;
    let master = seed_master(&spec.seeds);
    let mut metrics: Vec<&'static str> = Vec::new();
    let mut lines = Vec::new();
    for cell in results {
        let base = cell
            .summaries
            .iter()
            .find(|s| s.strategy == baseline)
            .ok_or_else(|| AnalysisError::BackendShapeMismatch {
                what: format!("baseline {baseline:?} missing from cell {}", cell.index),
            })?;
        for candidate in cell.summaries.iter().filter(|s| s.strategy != baseline) {
            let paired = paired_metrics(base, candidate, &spec.seeds, cell.index)?;
            if metrics.is_empty() {
                metrics = paired.iter().map(|m| m.metric).collect();
            }
            let deltas = paired
                .iter()
                .map(|m| metric_delta(m, master, cell.index, &candidate.strategy, opts))
                .collect();
            let priority_classes = paired_priority_classes(base, candidate).map(|classes| {
                classes
                    .into_iter()
                    .map(|c| {
                        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
                        let (bm, cm) = (mean(&c.baseline), mean(&c.candidate));
                        ClassDelta {
                            class: c.class,
                            baseline_mean: bm,
                            mean: cm,
                            delta: cm - bm,
                        }
                    })
                    .collect()
            });
            lines.push(CompareLine {
                cell: cell.index,
                axes: cell.axes,
                strategy: candidate.strategy.clone(),
                deltas,
                priority_classes,
            });
        }
    }
    if opts.adjust_p {
        // One family per report: every (cell × strategy × metric) test
        // the reader sees is one multiple-comparison opportunity, so
        // they are adjusted together, in emission order (deterministic).
        let family: Vec<f64> = lines
            .iter()
            .flat_map(|l| l.deltas.iter().map(|d| d.p))
            .collect();
        let adjusted = brb_metrics::benjamini_hochberg(&family);
        let mut it = adjusted.into_iter();
        for line in &mut lines {
            for d in &mut line.deltas {
                d.adjusted_p = it.next();
            }
        }
    }
    Ok(CompareReport {
        scenario: spec.name.clone(),
        baseline,
        backend: opts.backend.clone(),
        strategies,
        seeds: spec.seeds.clone(),
        metrics,
        resamples: opts.resamples,
        confidence: opts.confidence,
        spec: spec.clone(),
        lines,
    })
}

fn metric_delta(
    m: &PairedMetric,
    master: u64,
    cell: usize,
    strategy: &str,
    opts: &CompareOptions,
) -> MetricDelta {
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (baseline_mean, candidate_mean) = (mean(&m.baseline), mean(&m.candidate));
    let diffs = m.diffs();
    let delta = mean(&diffs);
    // seeds ≥ 2 is checked up front, so both inference calls succeed.
    let w = welch_t(&m.candidate, &m.baseline).expect("n >= 2 on both sides");
    let label = format!("cell{cell}/{strategy}/{}", m.metric);
    let ci = paired_bootstrap_ci(
        &diffs,
        opts.resamples,
        opts.confidence,
        stream_seed(master, &label),
    )
    .expect("non-empty diffs, valid confidence");
    MetricDelta {
        metric: m.metric,
        baseline_mean,
        mean: candidate_mean,
        delta,
        delta_pct: if baseline_mean == 0.0 {
            0.0
        } else {
            100.0 * delta / baseline_mean
        },
        t: w.t,
        df: w.df,
        p: w.p,
        ci_lo: ci.lo,
        ci_hi: ci.hi,
        significant: ci.excludes_zero(),
        // Filled by the family-wide Benjamini–Hochberg pass (if enabled)
        // once every line's raw p is known.
        adjusted_p: None,
        quantile_ci: quantile_bands(m, opts),
    }
}

/// Order-statistic CI on the per-seed quantile values themselves — the
/// error bar a reader should draw around each side's mean before trusting
/// a delta. Only the quantile metrics get bands; the seed-level values
/// for `mean_ms`/`goodput` are not order statistics, so a median band
/// over them would answer a different question.
fn quantile_bands(m: &PairedMetric, opts: &CompareOptions) -> Option<QuantileBands> {
    if !opts.quantile_ci || !matches!(m.metric, "p50_ms" | "p95_ms" | "p99_ms") {
        return None;
    }
    let band = |values: &[f64]| {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        brb_metrics::quantile_ci(&sorted, 0.5, opts.confidence)
    };
    let (b_lo, b_hi) = band(&m.baseline)?;
    let (c_lo, c_hi) = band(&m.candidate)?;
    Some(QuantileBands {
        baseline_ci_lo: b_lo,
        baseline_ci_hi: b_hi,
        ci_lo: c_lo,
        ci_hi: c_hi,
    })
}

// ---------------------------------------------------------------------------
// compare-v1 serialization (key order here *is* the schema).
// ---------------------------------------------------------------------------

struct CompareHeader<'a>(&'a CompareReport);

impl Serialize for CompareHeader<'_> {
    fn to_value(&self) -> Value {
        let r = self.0;
        Value::Object(vec![
            ("schema".into(), COMPARE_SCHEMA.to_value()),
            ("scenario".into(), r.scenario.to_value()),
            ("baseline".into(), r.baseline.to_value()),
            ("backend".into(), r.backend.to_value()),
            ("cells".into(), r.spec.sweep.num_cells().to_value()),
            ("strategies".into(), r.strategies.to_value()),
            ("seeds".into(), r.seeds.to_value()),
            (
                "metrics".into(),
                Value::Array(r.metrics.iter().map(|m| m.to_value()).collect()),
            ),
            ("resamples".into(), r.resamples.to_value()),
            ("confidence".into(), r.confidence.to_value()),
            ("spec".into(), r.spec.to_value()),
        ])
    }
}

impl Serialize for MetricDelta {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("baseline_mean".into(), self.baseline_mean.to_value()),
            ("mean".into(), self.mean.to_value()),
            ("delta".into(), self.delta.to_value()),
            ("delta_pct".into(), self.delta_pct.to_value()),
            ("t".into(), self.t.to_value()),
            ("df".into(), self.df.to_value()),
            ("p".into(), self.p.to_value()),
            ("ci_lo".into(), self.ci_lo.to_value()),
            ("ci_hi".into(), self.ci_hi.to_value()),
            ("significant".into(), self.significant.to_value()),
        ];
        // Opt-in keys append *after* the pinned compare-v1 set so
        // knobs-off output stays byte-identical.
        if let Some(p) = self.adjusted_p {
            entries.push(("adjusted_p".into(), p.to_value()));
        }
        if let Some(q) = &self.quantile_ci {
            entries.push((
                "quantile_ci".into(),
                Value::Object(vec![
                    ("baseline_ci_lo".into(), q.baseline_ci_lo.to_value()),
                    ("baseline_ci_hi".into(), q.baseline_ci_hi.to_value()),
                    ("ci_lo".into(), q.ci_lo.to_value()),
                    ("ci_hi".into(), q.ci_hi.to_value()),
                ]),
            ));
        }
        Value::Object(entries)
    }
}

impl Serialize for ClassDelta {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("class".into(), self.class.to_value()),
            ("baseline_mean".into(), self.baseline_mean.to_value()),
            ("mean".into(), self.mean.to_value()),
            ("delta".into(), self.delta.to_value()),
        ])
    }
}

impl Serialize for CompareLine {
    fn to_value(&self) -> Value {
        let deltas = Value::Object(
            self.deltas
                .iter()
                .map(|d| (d.metric.to_string(), d.to_value()))
                .collect(),
        );
        let mut entries = vec![
            ("cell".into(), self.cell.to_value()),
            ("axes".into(), self.axes.to_value()),
            ("strategy".into(), self.strategy.to_value()),
            ("deltas".into(), deltas),
        ];
        // Additive, like the report's own priority_classes block.
        if let Some(pc) = &self.priority_classes {
            entries.push(("priority_classes".into(), pc.to_value()));
        }
        Value::Object(entries)
    }
}

impl CompareReport {
    /// Writes the comparison as `compare-v1` JSONL.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        let render = |v: &dyn Serialize| {
            serde_json::to_string(v)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        };
        writeln!(w, "{}", render(&CompareHeader(self))?)?;
        for line in &self.lines {
            writeln!(w, "{}", render(line)?)?;
        }
        Ok(())
    }

    /// The comparison as a single JSONL string.
    pub fn to_jsonl_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf).expect("in-memory write");
        String::from_utf8(buf).expect("reports are UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use crate::runner::run_spec;
    use brb_core::config::{SelectorKind, Strategy};
    use brb_sched::PolicyKind;

    fn two_strategy_spec(seeds: &[u64]) -> ScenarioSpec {
        ScenarioBuilder::new("compare-test")
            .tasks(600)
            .scale_catalog(true)
            .strategies(vec![
                Strategy::Direct {
                    selector: SelectorKind::Random,
                    policy: PolicyKind::Fifo,
                    priority_queues: false,
                },
                Strategy::c3(),
            ])
            .seeds(seeds)
            .build()
            .unwrap()
    }

    #[test]
    fn compare_produces_one_line_per_candidate_and_is_deterministic() {
        let spec = two_strategy_spec(&[1, 2]);
        let results = run_spec(&spec).unwrap();
        let opts = CompareOptions::default();
        let report = compare_report(&spec, &results, "random_fifo", &opts).unwrap();
        assert_eq!(report.baseline, "random+FIFO");
        assert_eq!(report.lines.len(), 1);
        assert_eq!(report.lines[0].strategy, "C3");
        assert_eq!(report.metrics, ["p50_ms", "p95_ms", "p99_ms", "mean_ms"]);
        let text = report.to_jsonl_string();
        // Byte-identical rerun: same spec + results + options.
        let again = compare_report(&spec, &results, "random_fifo", &opts).unwrap();
        assert_eq!(again.to_jsonl_string(), text);
        assert!(text.starts_with(&format!("{{\"schema\":\"{COMPARE_SCHEMA}\"")));
    }

    #[test]
    fn self_comparison_under_crn_is_all_zero_with_ci_containing_zero() {
        // The CRN sanity property: a strategy against itself has
        // identical per-seed values, so every paired delta is exactly 0
        // and every bootstrap CI is the degenerate [0, 0] — containing
        // zero, never "significant".
        let spec = ScenarioBuilder::new("self-compare")
            .tasks(600)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3(), Strategy::equal_max_model()])
            .seeds(&[1, 2, 3])
            .build()
            .unwrap();
        let mut results = run_spec(&spec).unwrap();
        // Duplicate C3's summary under a distinct display name so the
        // comparison machinery treats it as a candidate.
        let mut clone = results[0].summaries[0].clone();
        clone.strategy = "C3-clone".into();
        for r in &mut clone.runs {
            r.strategy = "C3-clone".into();
        }
        results[0].summaries.push(clone);
        let report = compare_report(&spec, &results, "c3", &CompareOptions::default()).unwrap();
        let line = report
            .lines
            .iter()
            .find(|l| l.strategy == "C3-clone")
            .expect("clone compared");
        for d in &line.deltas {
            assert_eq!(d.delta, 0.0, "{}", d.metric);
            assert_eq!((d.ci_lo, d.ci_hi), (0.0, 0.0), "{}", d.metric);
            assert!(!d.significant, "{}", d.metric);
            assert_eq!(d.t, 0.0, "{}", d.metric);
            assert_eq!(d.p, 1.0, "{}", d.metric);
        }
    }

    #[test]
    fn single_seed_reports_refuse_significance_typed() {
        let spec = two_strategy_spec(&[1]);
        let results = run_spec(&spec).unwrap();
        assert_eq!(
            compare_report(&spec, &results, "c3", &CompareOptions::default()).unwrap_err(),
            AnalysisError::TooFewSeeds { seeds: 1 }
        );
    }

    #[test]
    fn unknown_baseline_lists_alternatives() {
        let spec = two_strategy_spec(&[1, 2]);
        let results = run_spec(&spec).unwrap();
        match compare_report(&spec, &results, "nope", &CompareOptions::default()) {
            Err(AnalysisError::UnknownBaseline { name, available }) => {
                assert_eq!(name, "nope");
                assert_eq!(available, vec!["random+FIFO".to_string(), "C3".to_string()]);
            }
            other => panic!("expected UnknownBaseline, got {other:?}"),
        }
    }
}
