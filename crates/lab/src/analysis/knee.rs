//! Capacity-knee analysis over a load sweep.
//!
//! For each strategy, walk the swept load axis in ascending order and
//! find the first load where the system stops keeping up — the **knee**:
//! either mean p99 exceeds an SLO (when one is given) or the delivered
//! ratio (completed / offered terminal outcomes) departs from 1 by more
//! than a tolerance. Everything below the knee is safe operating range;
//! the report then projects headroom under conservative / base /
//! aggressive growth multipliers against the current operating load.
//!
//! Output is `brb-lab/capacity-v1` JSONL: a header, then one line per
//! strategy. Key order is the schema, golden-pinned like `compare-v1`.

use super::AnalysisError;
use crate::runner::CellResult;
use crate::spec::ScenarioSpec;
use serde::{Serialize, Value};
use std::io::{self, Write};

/// The schema tag written into every capacity header.
pub const CAPACITY_SCHEMA: &str = "brb-lab/capacity-v1";

/// Capacity-analysis knobs.
#[derive(Debug, Clone)]
pub struct CapacityOptions {
    /// Backend label echoed into the header.
    pub backend: String,
    /// Mean-p99 SLO in milliseconds; `None` disables the latency gate.
    pub slo_p99_ms: Option<f64>,
    /// Max tolerated departure of delivered ratio from 1.0, in percent.
    pub tolerance_pct: f64,
    /// The current operating load headroom is judged against; defaults
    /// to the lowest swept load.
    pub at_load: Option<f64>,
}

impl Default for CapacityOptions {
    fn default() -> Self {
        CapacityOptions {
            backend: "sim".into(),
            slo_p99_ms: None,
            tolerance_pct: 5.0,
            at_load: None,
        }
    }
}

/// One strategy's health at one swept load.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// The swept load value.
    pub load: f64,
    /// Across-seed mean p99 latency (ms).
    pub p99_ms: f64,
    /// Across-seed mean delivered ratio:
    /// completed / (completed + dropped + timed_out + shed). Reports
    /// without the overload lane deliver everything by construction.
    pub delivered_ratio: f64,
    /// Whether this load passes both gates.
    pub safe: bool,
}

/// One growth-multiplier projection.
#[derive(Debug, Clone)]
pub struct Headroom {
    /// Projection name (`conservative` / `base` / `aggressive`).
    pub name: &'static str,
    /// The growth multiplier applied to the current load.
    pub multiplier: f64,
    /// `current_load × multiplier`.
    pub projected_load: f64,
    /// Whether the projection stays within the safe range.
    pub fits: bool,
}

/// One strategy's capacity line.
#[derive(Debug, Clone)]
pub struct CapacityLine {
    /// Strategy display name.
    pub strategy: String,
    /// First unsafe load, `None` when every swept load is safe.
    pub knee_load: Option<f64>,
    /// Highest safe load below the knee; `None` when even the lowest
    /// swept load is unsafe.
    pub last_safe_load: Option<f64>,
    /// The operating load headroom is judged against.
    pub current_load: f64,
    /// Per-load health, ascending by load.
    pub per_load: Vec<LoadPoint>,
    /// Growth projections against `last_safe_load`.
    pub headroom: Vec<Headroom>,
}

/// A complete capacity report.
#[derive(Debug, Clone)]
pub struct CapacityReport {
    /// Scenario name.
    pub scenario: String,
    /// Backend label.
    pub backend: String,
    /// The SLO gate used, if any.
    pub slo_p99_ms: Option<f64>,
    /// The delivered-ratio tolerance used (percent).
    pub tolerance_pct: f64,
    /// The swept loads, ascending.
    pub loads: Vec<f64>,
    /// Strategy display names, in spec order.
    pub strategies: Vec<String>,
    /// Seeds each strategy ran under.
    pub seeds: Vec<u64>,
    /// The spec that produced the underlying report.
    pub spec: ScenarioSpec,
    /// One line per strategy.
    pub lines: Vec<CapacityLine>,
}

const GROWTH: [(&str, f64); 3] = [("conservative", 1.1), ("base", 1.25), ("aggressive", 1.5)];

/// Builds the capacity analysis over a load-swept scenario's results.
pub fn capacity_report(
    spec: &ScenarioSpec,
    results: &[CellResult],
    opts: &CapacityOptions,
) -> Result<CapacityReport, AnalysisError> {
    if results.is_empty() {
        return Err(AnalysisError::EmptyReport);
    }
    if spec.sweep.load.is_empty() {
        return Err(AnalysisError::NoLoadAxis);
    }
    let mut loads: Vec<f64> = results.iter().filter_map(|c| c.axes.load).collect();
    loads.sort_by(|a, b| a.total_cmp(b));
    loads.dedup();
    if loads.len() != results.len() {
        return Err(AnalysisError::CapacityGridShape {
            cells: results.len(),
            loads: loads.len(),
        });
    }
    // Cells sorted ascending by load (grid order already is, but the
    // analysis shouldn't depend on it).
    let mut cells: Vec<&CellResult> = results.iter().collect();
    cells.sort_by(|a, b| {
        a.axes
            .load
            .expect("load axis checked above")
            .total_cmp(&b.axes.load.expect("load axis checked above"))
    });
    let strategies: Vec<String> = cells[0]
        .summaries
        .iter()
        .map(|s| s.strategy.clone())
        .collect();
    let current_load = opts.at_load.unwrap_or(loads[0]);

    let mut lines = Vec::with_capacity(strategies.len());
    for strategy in &strategies {
        let mut per_load = Vec::with_capacity(cells.len());
        for cell in &cells {
            let summary = cell
                .summaries
                .iter()
                .find(|s| &s.strategy == strategy)
                .ok_or_else(|| AnalysisError::BackendShapeMismatch {
                    what: format!("strategy {strategy:?} missing from cell {}", cell.index),
                })?;
            let n = summary.runs.len() as f64;
            let p99_ms = summary
                .runs
                .iter()
                .map(|r| r.task_latency_ms.p99)
                .sum::<f64>()
                / n;
            let delivered_ratio = summary
                .runs
                .iter()
                .map(|r| match &r.overload {
                    Some(o) => {
                        let done = r.completed_tasks as f64;
                        let offered = done + (o.dropped + o.timed_out + o.shed) as f64;
                        if offered == 0.0 {
                            1.0
                        } else {
                            done / offered
                        }
                    }
                    // No overload lane: nothing can fail terminally.
                    None => 1.0,
                })
                .sum::<f64>()
                / n;
            let latency_ok = opts.slo_p99_ms.is_none_or(|slo| p99_ms <= slo);
            let ratio_ok = delivered_ratio >= 1.0 - opts.tolerance_pct / 100.0;
            per_load.push(LoadPoint {
                load: cell.axes.load.expect("load axis checked above"),
                p99_ms,
                delivered_ratio,
                safe: latency_ok && ratio_ok,
            });
        }
        let knee_idx = per_load.iter().position(|p| !p.safe);
        let knee_load = knee_idx.map(|i| per_load[i].load);
        let last_safe_load = match knee_idx {
            Some(0) => None,
            Some(i) => Some(per_load[i - 1].load),
            None => Some(per_load.last().expect("non-empty sweep").load),
        };
        let headroom = GROWTH
            .iter()
            .map(|&(name, multiplier)| {
                let projected_load = current_load * multiplier;
                Headroom {
                    name,
                    multiplier,
                    projected_load,
                    fits: last_safe_load
                        .map(|safe| projected_load <= safe + 1e-9)
                        .unwrap_or(false),
                }
            })
            .collect();
        lines.push(CapacityLine {
            strategy: strategy.clone(),
            knee_load,
            last_safe_load,
            current_load,
            per_load,
            headroom,
        });
    }
    Ok(CapacityReport {
        scenario: spec.name.clone(),
        backend: opts.backend.clone(),
        slo_p99_ms: opts.slo_p99_ms,
        tolerance_pct: opts.tolerance_pct,
        loads,
        strategies,
        seeds: spec.seeds.clone(),
        spec: spec.clone(),
        lines,
    })
}

// ---------------------------------------------------------------------------
// capacity-v1 serialization (key order here *is* the schema).
// ---------------------------------------------------------------------------

struct CapacityHeader<'a>(&'a CapacityReport);

impl Serialize for CapacityHeader<'_> {
    fn to_value(&self) -> Value {
        let r = self.0;
        Value::Object(vec![
            ("schema".into(), CAPACITY_SCHEMA.to_value()),
            ("scenario".into(), r.scenario.to_value()),
            ("backend".into(), r.backend.to_value()),
            ("slo_p99_ms".into(), r.slo_p99_ms.to_value()),
            ("tolerance_pct".into(), r.tolerance_pct.to_value()),
            ("loads".into(), r.loads.to_value()),
            ("strategies".into(), r.strategies.to_value()),
            ("seeds".into(), r.seeds.to_value()),
            ("spec".into(), r.spec.to_value()),
        ])
    }
}

impl Serialize for LoadPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("load".into(), self.load.to_value()),
            ("p99_ms".into(), self.p99_ms.to_value()),
            ("delivered_ratio".into(), self.delivered_ratio.to_value()),
            ("safe".into(), self.safe.to_value()),
        ])
    }
}

impl Serialize for Headroom {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), self.name.to_value()),
            ("multiplier".into(), self.multiplier.to_value()),
            ("projected_load".into(), self.projected_load.to_value()),
            ("fits".into(), self.fits.to_value()),
        ])
    }
}

impl Serialize for CapacityLine {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("strategy".into(), self.strategy.to_value()),
            ("knee_load".into(), self.knee_load.to_value()),
            ("last_safe_load".into(), self.last_safe_load.to_value()),
            ("current_load".into(), self.current_load.to_value()),
            ("per_load".into(), self.per_load.to_value()),
            ("headroom".into(), self.headroom.to_value()),
        ])
    }
}

impl CapacityReport {
    /// Writes the analysis as `capacity-v1` JSONL.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        let render = |v: &dyn Serialize| {
            serde_json::to_string(v)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        };
        writeln!(w, "{}", render(&CapacityHeader(self))?)?;
        for line in &self.lines {
            writeln!(w, "{}", render(line)?)?;
        }
        Ok(())
    }

    /// The analysis as a single JSONL string.
    pub fn to_jsonl_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf).expect("in-memory write");
        String::from_utf8(buf).expect("reports are UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use crate::runner::run_spec;
    use brb_core::config::Strategy;

    fn load_swept_spec() -> ScenarioSpec {
        ScenarioBuilder::new("capacity-test")
            .tasks(600)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3(), Strategy::equal_max_model()])
            .seeds(&[1, 2])
            .sweep_load(&[0.4, 0.8, 1.2])
            .build()
            .unwrap()
    }

    #[test]
    fn knee_is_first_unsafe_load_under_an_slo() {
        let spec = load_swept_spec();
        let results = run_spec(&spec).unwrap();
        let opts = CapacityOptions {
            // An SLO of 0 fails every load: knee at the first cell.
            slo_p99_ms: Some(0.0),
            ..CapacityOptions::default()
        };
        let report = capacity_report(&spec, &results, &opts).unwrap();
        assert_eq!(report.loads, vec![0.4, 0.8, 1.2]);
        assert_eq!(report.lines.len(), 2);
        for line in &report.lines {
            assert_eq!(line.knee_load, Some(0.4));
            assert_eq!(line.last_safe_load, None);
            assert!(line.headroom.iter().all(|h| !h.fits));
        }
        // A generous SLO passes every load: no knee, full headroom.
        let generous = CapacityOptions {
            slo_p99_ms: Some(1e9),
            ..CapacityOptions::default()
        };
        let report = capacity_report(&spec, &results, &generous).unwrap();
        for line in &report.lines {
            assert_eq!(line.knee_load, None);
            assert_eq!(line.last_safe_load, Some(1.2));
            assert_eq!(line.current_load, 0.4);
            assert!(line.headroom.iter().all(|h| h.fits), "0.4×1.5 ≤ 1.2");
        }
    }

    #[test]
    fn capacity_reruns_are_byte_identical() {
        let spec = load_swept_spec();
        let results = run_spec(&spec).unwrap();
        let opts = CapacityOptions::default();
        let a = capacity_report(&spec, &results, &opts)
            .unwrap()
            .to_jsonl_string();
        let b = capacity_report(&spec, &results, &opts)
            .unwrap()
            .to_jsonl_string();
        assert_eq!(a, b);
        assert!(a.starts_with(&format!("{{\"schema\":\"{CAPACITY_SCHEMA}\"")));
    }

    #[test]
    fn missing_load_axis_is_a_typed_error() {
        let spec = ScenarioBuilder::new("no-load")
            .tasks(400)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3()])
            .seeds(&[1, 2])
            .build()
            .unwrap();
        let results = run_spec(&spec).unwrap();
        assert_eq!(
            capacity_report(&spec, &results, &CapacityOptions::default()).unwrap_err(),
            AnalysisError::NoLoadAxis
        );
    }

    #[test]
    fn extra_sweep_axes_are_a_typed_error() {
        let spec = ScenarioBuilder::new("two-axes")
            .tasks(400)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3()])
            .seeds(&[1, 2])
            .sweep_load(&[0.4, 0.8])
            .sweep_mean_fanout(&[2, 4])
            .build()
            .unwrap();
        let results = run_spec(&spec).unwrap();
        assert_eq!(
            capacity_report(&spec, &results, &CapacityOptions::default()).unwrap_err(),
            AnalysisError::CapacityGridShape { cells: 4, loads: 2 }
        );
    }
}
