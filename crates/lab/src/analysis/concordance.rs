//! Strategy-ordering agreement between two backends.
//!
//! `compare --backend both` runs the same spec through the sim and the
//! rt backend. Absolute latencies differ (virtual vs wall clock), but
//! the *ordering* of strategies should agree — that is the claim that
//! makes the simulator trustworthy. This module scores the agreement
//! per cell with Kendall tau over across-seed metric means: +1 is
//! identical ordering, −1 inverted, 0 unrelated.

use super::AnalysisError;
use crate::runner::CellResult;
use crate::spec::CellAxes;
use serde::{Serialize, Value};

/// Per-cell ordering agreement between two backends.
#[derive(Debug, Clone)]
pub struct CellConcordance {
    /// Cell index in grid order.
    pub cell: usize,
    /// The axis values the cell ran at.
    pub axes: CellAxes,
    /// Kendall tau per metric; `None` when the tau is undefined
    /// (fewer than two strategies).
    pub metrics: Vec<(&'static str, Option<f64>)>,
}

/// Scores strategy-ordering agreement cell by cell. Metrics covered:
/// `p99_ms` always, `goodput` when both backends ran the overload lane.
/// The two runs must agree structurally (same cells, same strategy
/// sets) or the comparison is meaningless — typed error otherwise.
pub fn ordering_concordance(
    a: &[CellResult],
    b: &[CellResult],
) -> Result<Vec<CellConcordance>, AnalysisError> {
    if a.len() != b.len() {
        return Err(AnalysisError::BackendShapeMismatch {
            what: format!("{} cells vs {}", a.len(), b.len()),
        });
    }
    let mut out = Vec::with_capacity(a.len());
    for (ca, cb) in a.iter().zip(b) {
        let names_a: Vec<&str> = ca.summaries.iter().map(|s| s.strategy.as_str()).collect();
        let names_b: Vec<&str> = cb.summaries.iter().map(|s| s.strategy.as_str()).collect();
        if names_a != names_b {
            return Err(AnalysisError::BackendShapeMismatch {
                what: format!("cell {}: strategies {names_a:?} vs {names_b:?}", ca.index),
            });
        }
        let mean = |vals: Vec<f64>| vals.iter().sum::<f64>() / vals.len() as f64;
        let p99 = |c: &CellResult| -> Vec<f64> {
            c.summaries
                .iter()
                .map(|s| mean(s.runs.iter().map(|r| r.task_latency_ms.p99).collect()))
                .collect()
        };
        let mut metrics = vec![("p99_ms", brb_metrics::kendall_tau(&p99(ca), &p99(cb)))];
        let has_goodput = |c: &CellResult| {
            c.summaries
                .iter()
                .all(|s| s.runs.iter().all(|r| r.overload.is_some()))
        };
        if has_goodput(ca) && has_goodput(cb) {
            let goodput = |c: &CellResult| -> Vec<f64> {
                c.summaries
                    .iter()
                    .map(|s| {
                        mean(
                            s.runs
                                .iter()
                                .map(|r| r.overload.as_ref().expect("checked above").goodput)
                                .collect(),
                        )
                    })
                    .collect()
            };
            metrics.push((
                "goodput",
                brb_metrics::kendall_tau(&goodput(ca), &goodput(cb)),
            ));
        }
        out.push(CellConcordance {
            cell: ca.index,
            axes: ca.axes,
            metrics,
        });
    }
    Ok(out)
}

impl Serialize for CellConcordance {
    fn to_value(&self) -> Value {
        let scores = Value::Object(
            self.metrics
                .iter()
                .map(|(name, tau)| (name.to_string(), tau.to_value()))
                .collect(),
        );
        Value::Object(vec![
            ("cell".into(), self.cell.to_value()),
            ("axes".into(), self.axes.to_value()),
            ("concordance".into(), scores),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use crate::runner::run_spec;
    use brb_core::config::Strategy;

    fn results() -> Vec<CellResult> {
        let spec = ScenarioBuilder::new("concordance")
            .tasks(500)
            .scale_catalog(true)
            .strategies(vec![Strategy::c3(), Strategy::equal_max_model()])
            .seeds(&[1, 2])
            .build()
            .unwrap();
        run_spec(&spec).unwrap()
    }

    #[test]
    fn identical_backends_agree_perfectly() {
        let r = results();
        let scored = ordering_concordance(&r, &r).unwrap();
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].metrics[0], ("p99_ms", Some(1.0)));
    }

    #[test]
    fn structural_disagreement_is_typed() {
        let r = results();
        assert!(matches!(
            ordering_concordance(&r, &[]).unwrap_err(),
            AnalysisError::BackendShapeMismatch { .. }
        ));
        let mut renamed = r.clone();
        renamed[0].summaries[0].strategy = "other".into();
        assert!(matches!(
            ordering_concordance(&r, &renamed).unwrap_err(),
            AnalysisError::BackendShapeMismatch { .. }
        ));
    }
}
