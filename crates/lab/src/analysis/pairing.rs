//! Per-seed paired metric extraction.
//!
//! Every strategy under a given seed runs the *same* workload trace
//! (common random numbers, shared by `run_strategies_multi_seed` since
//! PR 1), so seed-indexed differences between two strategies cancel the
//! workload's own variance. This module turns two `StrategySummary`s
//! into aligned per-seed vectors — after verifying the alignment
//! actually holds, because pairing mismatched seeds would silently
//! compare different workloads.

use super::AnalysisError;
use brb_core::experiment::{RunResult, StrategySummary};

/// The latency metrics every report carries, in report order.
pub const LATENCY_METRICS: [&str; 4] = ["p50_ms", "p95_ms", "p99_ms", "mean_ms"];

/// The goodput metric name (present only when the overload lane ran).
pub const GOODPUT_METRIC: &str = "goodput";

/// One metric's aligned per-seed observations for a (baseline,
/// candidate) strategy pair. Index `i` of both vectors ran seed `i` of
/// the spec's seed list — the same workload trace.
#[derive(Debug, Clone)]
pub struct PairedMetric {
    /// Metric name (a `report-v1` summary key).
    pub metric: &'static str,
    /// Baseline per-seed values.
    pub baseline: Vec<f64>,
    /// Candidate per-seed values.
    pub candidate: Vec<f64>,
}

impl PairedMetric {
    /// Per-seed paired differences, candidate − baseline.
    pub fn diffs(&self) -> Vec<f64> {
        self.candidate
            .iter()
            .zip(&self.baseline)
            .map(|(c, b)| c - b)
            .collect()
    }
}

/// One priority class's aligned per-seed terminal-failure counts
/// (dropped + shed) for a strategy pair — the starvation signal.
#[derive(Debug, Clone)]
pub struct PairedClass {
    /// log₂ bucket of the priority key (bit length).
    pub class: u8,
    /// Baseline per-seed dropped+shed counts.
    pub baseline: Vec<f64>,
    /// Candidate per-seed dropped+shed counts.
    pub candidate: Vec<f64>,
}

/// Verifies a summary's runs line up with the seed list one-to-one.
fn check_alignment(
    summary: &StrategySummary,
    seeds: &[u64],
    cell: usize,
) -> Result<(), AnalysisError> {
    let aligned = summary.runs.len() == seeds.len()
        && summary.runs.iter().zip(seeds).all(|(r, &s)| r.seed == s);
    if aligned {
        Ok(())
    } else {
        Err(AnalysisError::SeedMismatch {
            strategy: summary.strategy.clone(),
            cell,
        })
    }
}

/// Extracts every comparable metric as aligned per-seed vectors.
/// Latency metrics always; goodput when **both** strategies ran the
/// overload lane on every seed (the lane is spec-global, so a mixed
/// pair would be a report inconsistency, not a feature).
pub fn paired_metrics(
    baseline: &StrategySummary,
    candidate: &StrategySummary,
    seeds: &[u64],
    cell: usize,
) -> Result<Vec<PairedMetric>, AnalysisError> {
    check_alignment(baseline, seeds, cell)?;
    check_alignment(candidate, seeds, cell)?;
    let latency = |r: &RunResult, metric: &str| match metric {
        "p50_ms" => r.task_latency_ms.p50,
        "p95_ms" => r.task_latency_ms.p95,
        "p99_ms" => r.task_latency_ms.p99,
        "mean_ms" => r.task_latency_ms.mean,
        other => unreachable!("unknown latency metric {other}"),
    };
    let mut out: Vec<PairedMetric> = LATENCY_METRICS
        .iter()
        .map(|&metric| PairedMetric {
            metric,
            baseline: baseline.runs.iter().map(|r| latency(r, metric)).collect(),
            candidate: candidate.runs.iter().map(|r| latency(r, metric)).collect(),
        })
        .collect();
    let has_goodput = |s: &StrategySummary| s.runs.iter().all(|r| r.overload.is_some());
    if has_goodput(baseline) && has_goodput(candidate) {
        let goodput = |s: &StrategySummary| {
            s.runs
                .iter()
                .map(|r| r.overload.as_ref().expect("checked above").goodput)
                .collect()
        };
        out.push(PairedMetric {
            metric: GOODPUT_METRIC,
            baseline: goodput(baseline),
            candidate: goodput(candidate),
        });
    }
    Ok(out)
}

/// Per-class dropped+shed pairing, present only when both strategies
/// carry the `priority_classes` split on every run. Classes are the
/// union of both sides; a class absent from a run counts 0 (nothing of
/// that class failed there).
pub fn paired_priority_classes(
    baseline: &StrategySummary,
    candidate: &StrategySummary,
) -> Option<Vec<PairedClass>> {
    let has = |s: &StrategySummary| s.runs.iter().all(|r| r.priority_classes.is_some());
    if !has(baseline) || !has(candidate) {
        return None;
    }
    let mut classes: Vec<u8> = baseline
        .runs
        .iter()
        .chain(&candidate.runs)
        .flat_map(|r| r.priority_classes.as_ref().expect("checked above"))
        .map(|c| c.class)
        .collect();
    classes.sort_unstable();
    classes.dedup();
    let count_for = |r: &RunResult, class: u8| {
        r.priority_classes
            .as_ref()
            .expect("checked above")
            .iter()
            .find(|c| c.class == class)
            .map(|c| (c.dropped + c.shed) as f64)
            .unwrap_or(0.0)
    };
    Some(
        classes
            .into_iter()
            .map(|class| PairedClass {
                class,
                baseline: baseline.runs.iter().map(|r| count_for(r, class)).collect(),
                candidate: candidate.runs.iter().map(|r| count_for(r, class)).collect(),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use brb_core::config::{ExperimentConfig, Strategy};
    use brb_core::experiment::run_strategies_multi_seed;

    fn small(tasks: usize) -> ExperimentConfig {
        ScenarioBuilder::new("pairing")
            .tasks(tasks)
            .scale_catalog(true)
            .build_config(Strategy::c3(), 0)
            .unwrap()
    }

    #[test]
    fn latency_metrics_pair_in_seed_order() {
        let base = small(800);
        let out = run_strategies_multi_seed(
            &base,
            &[Strategy::c3(), Strategy::equal_max_model()],
            &[1, 2],
        );
        let metrics = paired_metrics(&out[0], &out[1], &[1, 2], 0).unwrap();
        assert_eq!(metrics.len(), 4, "no overload lane ⇒ latency only");
        for m in &metrics {
            assert_eq!(m.baseline.len(), 2);
            assert_eq!(m.candidate.len(), 2);
        }
        // Self-pairing under CRN: identical vectors, all-zero diffs.
        let self_pair = paired_metrics(&out[0], &out[0], &[1, 2], 0).unwrap();
        for m in &self_pair {
            assert!(
                m.diffs().iter().all(|&d| d == 0.0),
                "{}: {:?}",
                m.metric,
                m.diffs()
            );
        }
    }

    #[test]
    fn seed_misalignment_is_a_typed_error() {
        let base = small(800);
        let out = run_strategies_multi_seed(&base, &[Strategy::c3()], &[1, 2]);
        match paired_metrics(&out[0], &out[0], &[2, 1], 3) {
            Err(AnalysisError::SeedMismatch { strategy, cell }) => {
                assert_eq!(strategy, "C3");
                assert_eq!(cell, 3);
            }
            other => panic!("expected SeedMismatch, got {other:?}"),
        }
    }

    #[test]
    fn goodput_pairs_only_when_the_lane_ran() {
        let mut cfg = small(800);
        cfg.workload.load = 1.2;
        cfg.overload.queue = Some(brb_core::config::QueueConfig {
            capacity: 64,
            shed_above: Some(48),
            codel: None,
            priority_stats: true,
        });
        let out = run_strategies_multi_seed(
            &cfg,
            &[Strategy::c3(), Strategy::equal_max_credits()],
            &[1, 2],
        );
        let metrics = paired_metrics(&out[0], &out[1], &[1, 2], 0).unwrap();
        assert_eq!(metrics.len(), 5);
        assert_eq!(metrics[4].metric, GOODPUT_METRIC);
        let classes = paired_priority_classes(&out[0], &out[1]).expect("split requested");
        assert!(!classes.is_empty());
        for c in &classes {
            assert_eq!(c.baseline.len(), 2);
            assert_eq!(c.candidate.len(), 2);
        }
        assert!(
            classes.windows(2).all(|w| w[0].class < w[1].class),
            "classes ascend"
        );
    }
}
