//! The experiment **analysis** subsystem: paired A/B comparison and
//! capacity-knee reports over `brb-lab/report-v1` results.
//!
//! Running scenarios was solved in PRs 1–7; *comparing* them was still
//! manual JSONL-diffing. This module tree turns a report (fresh from a
//! backend or ingested from disk) into decisions:
//!
//! * [`ingest`] — parse a `report-v1` JSONL byte-for-byte back into the
//!   `(spec, results)` pair that produced it (round-trip is
//!   test-enforced, including the additive overload and
//!   `priority_classes` blocks).
//! * [`pairing`] — per-seed paired metric vectors. Common random
//!   numbers already share each seed's workload trace across
//!   strategies, so per-seed differences are free variance reduction.
//! * [`compare`] — per-cell, per-strategy deltas vs a baseline with
//!   Welch t statistics and deterministic paired-bootstrap confidence
//!   intervals (`brb-lab/compare-v1`).
//! * [`knee`] — capacity analysis over a load sweep: each strategy's
//!   saturation knee, plus headroom under growth multipliers
//!   (`brb-lab/capacity-v1`).
//! * [`concordance`] — strategy-ordering agreement between the sim and
//!   rt backends (Kendall tau), for `compare --backend both`.
//! * [`markdown`] — the human-readable companion reports.
//!
//! Everything here is read-only over run output and deterministic: the
//! bootstrap RNG is seeded from the spec's seed list, never the clock,
//! so reruns are byte-identical.

pub mod compare;
pub mod concordance;
pub mod ingest;
pub mod knee;
pub mod markdown;
pub mod pairing;

pub use compare::{compare_report, CompareOptions, CompareReport, COMPARE_SCHEMA};
pub use concordance::{ordering_concordance, CellConcordance};
pub use ingest::{parse_jsonl, ParsedReport};
pub use knee::{capacity_report, CapacityOptions, CapacityReport, CAPACITY_SCHEMA};

use std::fmt;

/// Everything that can go wrong analyzing a report.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// Significance needs at least two seeds — with one, every stddev
    /// is 0 by convention and a t statistic would be garbage. The
    /// analysis refuses typed instead of emitting NaN tables.
    TooFewSeeds {
        /// Seeds the report ran with.
        seeds: usize,
    },
    /// The requested baseline matches no strategy in the report
    /// (matching is case/punctuation-insensitive: `random_fifo` finds
    /// `random+FIFO`).
    UnknownBaseline {
        /// The name that failed to resolve.
        name: String,
        /// Every strategy the report carries.
        available: Vec<String>,
    },
    /// A strategy's per-seed runs do not line up with the spec's seed
    /// list — pairing would compare different workload traces.
    SeedMismatch {
        /// The strategy whose runs misalign.
        strategy: String,
        /// The cell it happened in.
        cell: usize,
    },
    /// Capacity analysis needs a `load` sweep axis; the report has none.
    NoLoadAxis,
    /// Capacity analysis needs exactly one cell per swept load; another
    /// axis is multiplying the grid.
    CapacityGridShape {
        /// Cells the report carries.
        cells: usize,
        /// Distinct load values among them.
        loads: usize,
    },
    /// The ingested file does not carry the expected schema tag.
    SchemaMismatch {
        /// The schema tag found (or a description of what was missing).
        found: String,
    },
    /// The two backends' reports disagree structurally (cells or
    /// strategy sets), so orderings cannot be compared.
    BackendShapeMismatch {
        /// What disagreed.
        what: String,
    },
    /// The report has a header but no records.
    EmptyReport,
    /// A report line failed to parse.
    Parse(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use AnalysisError::*;
        match self {
            TooFewSeeds { seeds } => write!(
                f,
                "significance needs at least 2 seeds, report has {seeds}; \
                 rerun with --seeds a,b (or more)"
            ),
            UnknownBaseline { name, available } => write!(
                f,
                "baseline {name:?} matches no strategy; available: {}",
                available.join(", ")
            ),
            SeedMismatch { strategy, cell } => write!(
                f,
                "strategy {strategy:?} in cell {cell} has runs that do not \
                 line up with the spec's seed list"
            ),
            NoLoadAxis => write!(
                f,
                "capacity analysis needs a load sweep axis (spec `sweep.load`)"
            ),
            CapacityGridShape { cells, loads } => write!(
                f,
                "capacity analysis needs one cell per swept load, got {cells} \
                 cells over {loads} loads (drop the other sweep axes)"
            ),
            SchemaMismatch { found } => {
                write!(f, "expected a brb-lab/report-v1 file, found {found}")
            }
            BackendShapeMismatch { what } => {
                write!(f, "backends disagree structurally: {what}")
            }
            EmptyReport => write!(f, "report has no records"),
            Parse(msg) => write!(f, "report parse error: {msg}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Canonical form for strategy-name matching: lowercase, every
/// non-alphanumeric run collapsed to one `_`, trimmed. `random+FIFO`,
/// `random_fifo` and `Random FIFO` all normalize identically.
pub fn normalize_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// FNV-1a over a byte string (the repo's standing label-hash).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The master bootstrap seed, derived from the spec's seed list alone —
/// never the clock — so the same report always yields the same
/// confidence intervals.
pub(crate) fn seed_master(seeds: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(seeds.len() * 8);
    for s in seeds {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// One labeled bootstrap stream off the master seed (cell × strategy ×
/// metric each get their own).
pub(crate) fn stream_seed(master: u64, label: &str) -> u64 {
    master ^ fnv1a(label.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_unifies_display_and_cli_forms() {
        assert_eq!(normalize_name("random+FIFO"), "random_fifo");
        assert_eq!(normalize_name("random_fifo"), "random_fifo");
        assert_eq!(normalize_name("EqualMax - Credits"), "equalmax_credits");
        assert_eq!(
            normalize_name("hedged(random, 5000us)"),
            "hedged_random_5000us"
        );
        assert_eq!(normalize_name("C3"), "c3");
        assert_eq!(normalize_name("__C3__"), "c3");
    }

    #[test]
    fn stream_seeds_are_stable_and_label_dependent() {
        let master = seed_master(&[1, 2]);
        assert_eq!(master, seed_master(&[1, 2]));
        assert_ne!(master, seed_master(&[2, 1]), "seed order matters");
        assert_ne!(
            stream_seed(master, "cell0/C3/goodput"),
            stream_seed(master, "cell0/C3/p99_ms")
        );
    }
}
