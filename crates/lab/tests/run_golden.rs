//! Golden seed-stability hashes for whole engine runs.
//!
//! `dist_golden.rs` (in `brb-sim`) pins the *samplers*; this file pins
//! the *system*: for every registry preset, every lowered cell, every
//! strategy and three seeds, the serialized `RunResult` is folded into
//! a 64-bit FNV-1a hash and compared against
//! `tests/golden/run_hashes.json`. Any engine, scheduler, network or
//! workload refactor that changes any output bit — a latency
//! percentile, an event count, a counter — fails here and must be a
//! deliberate, reviewed regeneration (`BRB_BLESS=1 cargo test -p
//! brb-lab --test run_golden`) instead of a silent drift.
//!
//! The committed hashes were produced on x86-64 Linux. The simulation
//! is deterministic in its config, but a few model paths round through
//! libm (`exp` in the log-normal service noise); a port with a
//! divergent libm that trips these should regenerate deliberately, as
//! `dist_golden.rs` documents for the ziggurat wedge draws.

use brb_core::experiment::run_experiment;
use brb_lab::{registry, ScenarioBuilder};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One pinned run: `preset/cellN/strategy/seedS` → FNV-1a of the
/// serialized `RunResult`.
#[derive(Debug, Serialize, Deserialize)]
struct GoldenEntry {
    key: String,
    hash: String,
}

const TASKS: usize = 300;
const SEEDS: [u64; 3] = [1, 2, 3];
const GOLDEN: &str = include_str!("golden/run_hashes.json");
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/run_hashes.json");

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Runs the whole preset × cell × strategy × seed grid and returns
/// `"preset/cellN/strategy/seedS" → hash` in deterministic order.
fn compute_hashes() -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for preset in registry::names() {
        let spec = ScenarioBuilder::from_spec(registry::spec(preset).expect("registry preset"))
            .tasks(TASKS)
            .scale_catalog(true)
            .seeds(&SEEDS)
            .build()
            .unwrap_or_else(|e| panic!("{preset}: {e}"));
        for cell in spec.lower().unwrap_or_else(|e| panic!("{preset}: {e}")) {
            for strategy in &cell.strategies {
                for &seed in &cell.seeds {
                    let result = run_experiment(cell.config_for(strategy.clone(), seed));
                    let json = serde_json::to_string(&result).expect("serialize run");
                    let key = format!("{preset}/cell{}/{}/seed{seed}", cell.index, strategy.name());
                    let prev = out.insert(key.clone(), format!("{:#018x}", fnv1a(json.as_bytes())));
                    assert!(prev.is_none(), "duplicate golden key {key}");
                }
            }
        }
    }
    out
}

#[test]
fn preset_runs_match_golden_hashes() {
    let got = compute_hashes();
    if std::env::var_os("BRB_BLESS").is_some() {
        // Deliberate regeneration — review the diff before committing.
        let entries: Vec<GoldenEntry> = got
            .into_iter()
            .map(|(key, hash)| GoldenEntry { key, hash })
            .collect();
        let rendered = serde_json::to_string_pretty(&entries).expect("serialize goldens");
        std::fs::write(GOLDEN_PATH, format!("{rendered}\n")).expect("bless golden file");
        return;
    }
    let want_entries: Vec<GoldenEntry> =
        serde_json::from_str(GOLDEN).expect("parse tests/golden/run_hashes.json");
    let want: BTreeMap<String, String> =
        want_entries.into_iter().map(|e| (e.key, e.hash)).collect();
    // Compare keys first so a missing/extra run reads as such, not as a
    // hash mismatch.
    let got_keys: Vec<&String> = got.keys().collect();
    let want_keys: Vec<&String> = want.keys().collect();
    assert_eq!(
        got_keys, want_keys,
        "the preset × cell × strategy × seed grid changed — regenerate with BRB_BLESS=1"
    );
    for (key, hash) in &got {
        assert_eq!(
            hash, &want[key],
            "run output drifted for {key} — an engine/net/scheduler change altered results; \
             if intentional, regenerate with BRB_BLESS=1 and review"
        );
    }
}
