//! Fast-path/slow-path differential: the compiled `FabricPlan` network
//! path must be *invisible in the results*.
//!
//! For every registry preset, every lowered cell, every strategy and
//! three seeds, the same run executes twice — once through the compiled
//! plan (`PlanMode::Compiled`, the default: precomputed hop deltas plus
//! the calendar's fixed-delta hop lane) and once through the forced
//! per-message build (`PlanMode::PerMessage`, the historical
//! `Fabric::delay`-per-message draw) — and the serialized `RunResult`s
//! must match byte for byte. That covers latencies at full float
//! precision, event counts, and every counter: any divergence in event
//! order, RNG consumption or delay arithmetic between the two paths
//! fails here instead of silently shifting tail-latency numbers
//! (TailBench++'s lesson: results are only as trustworthy as the
//! harness that pins them).
//!
//! Constant-mesh presets exercise the real fast path; jittered meshes
//! (`transient-spike`) compile to the sampling fallback and prove the
//! fallback consumes the RNG identically.

use brb_core::experiment::run_experiment;
use brb_lab::{registry, ScenarioBuilder};
use brb_net::PlanMode;

/// Small but non-trivial: enough tasks that every machinery path runs
/// (hedging budgets, credit adaptation ticks, warm-up trimming).
const TASKS: usize = 300;
const SEEDS: [u64; 3] = [1, 2, 3];

fn lowered(preset: &str, mode: PlanMode) -> Vec<brb_lab::ScenarioCell> {
    let spec = ScenarioBuilder::from_spec(registry::spec(preset).expect("registry preset"))
        .tasks(TASKS)
        .scale_catalog(true)
        .seeds(&SEEDS)
        .net(mode)
        .build()
        .unwrap_or_else(|e| panic!("{preset}: {e}"));
    spec.lower().unwrap_or_else(|e| panic!("{preset}: {e}"))
}

#[test]
fn every_preset_runs_byte_identically_on_both_net_paths() {
    for preset in registry::names() {
        let fast_cells = lowered(preset, PlanMode::Compiled);
        let slow_cells = lowered(preset, PlanMode::PerMessage);
        assert_eq!(fast_cells.len(), slow_cells.len(), "{preset} cell grid");
        for (fast, slow) in fast_cells.iter().zip(&slow_cells) {
            assert_eq!(fast.strategies.len(), slow.strategies.len());
            for strategy in &fast.strategies {
                for &seed in &fast.seeds {
                    let f = run_experiment(fast.config_for(strategy.clone(), seed));
                    let s = run_experiment(slow.config_for(strategy.clone(), seed));
                    let fj = serde_json::to_string(&f).expect("serialize fast run");
                    let sj = serde_json::to_string(&s).expect("serialize slow run");
                    assert_eq!(
                        fj,
                        sj,
                        "net paths diverged: preset {preset}, cell {}, strategy {}, seed {seed}",
                        fast.index,
                        strategy.name()
                    );
                }
            }
        }
    }
}

/// The two modes must lower to configs that differ *only* in the `net`
/// field — the differential above compares the runs, this pins that the
/// harness really flipped just the one switch.
#[test]
fn net_mode_is_the_only_config_difference() {
    for preset in registry::names() {
        let fast = lowered(preset, PlanMode::Compiled);
        let slow = lowered(preset, PlanMode::PerMessage);
        for (f, s) in fast.iter().zip(&slow) {
            let mut slow_base = s.base.clone();
            assert_eq!(slow_base.net, PlanMode::PerMessage, "{preset}");
            assert_eq!(f.base.net, PlanMode::Compiled, "{preset}");
            slow_base.net = PlanMode::Compiled;
            assert_eq!(
                serde_json::to_string(&f.base).unwrap(),
                serde_json::to_string(&slow_base).unwrap(),
                "{preset}: cells differ beyond the net mode"
            );
        }
    }
}
