//! Golden pins for the spec layer:
//!
//! * the `figure2-small` preset's lowered `ExperimentConfig` (full JSON,
//!   committed at `tests/golden/figure2_small_lowering.json`) — any
//!   change to the paper constants, the catalog-shrink rule, or the
//!   config serialization shows up as a diff against a reviewed file;
//! * the JSON-lines `Report` schema — the exact key structure of the
//!   header and record lines (CI additionally greps the emitted file,
//!   like `BENCH_kernel.json`).

use brb_core::config::Strategy;
use brb_lab::{registry, report, runner, ScenarioBuilder, REPORT_SCHEMA};
use serde::Value;

const LOWERING_GOLDEN: &str = include_str!("golden/figure2_small_lowering.json");

#[test]
fn figure2_small_lowering_matches_golden_file() {
    let spec = registry::spec("figure2-small").expect("registry preset");
    let cells = spec.lower().expect("preset lowers");
    assert_eq!(cells.len(), 1, "figure2-small is a single-cell scenario");
    let rendered = serde_json::to_string_pretty(&cells[0].base).expect("serialize");
    if std::env::var_os("BRB_BLESS").is_some() {
        // Deliberate regeneration: `BRB_BLESS=1 cargo test -p brb-lab`.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/figure2_small_lowering.json"
        );
        std::fs::write(path, format!("{}\n", rendered.trim())).expect("bless golden file");
        return;
    }
    assert_eq!(
        rendered.trim(),
        LOWERING_GOLDEN.trim(),
        "figure2-small lowering drifted from tests/golden/figure2_small_lowering.json — \
         if the change is intentional, regenerate with BRB_BLESS=1"
    );
}

/// Collects an object's keys in order; panics on non-objects.
fn keys(v: &Value) -> Vec<&str> {
    match v {
        Value::Object(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("expected object, got {other:?}"),
    }
}

#[test]
fn report_jsonl_schema_is_pinned() {
    // A deliberately tiny sweep so the golden covers the axes echo.
    let spec = ScenarioBuilder::new("schema-pin")
        .tasks(300)
        .scale_catalog(true)
        .strategies(vec![Strategy::c3(), Strategy::equal_max_model()])
        .seeds(&[1])
        .sweep_load(&[0.5, 0.7])
        .build()
        .expect("valid scenario");
    let results = runner::run_spec(&spec).expect("scenario runs");
    let text = report::to_jsonl_string(&spec, &results);
    let mut lines = text.lines();

    // Header line.
    let header: Value = serde_json::from_str(lines.next().expect("header line")).unwrap();
    assert_eq!(
        keys(&header),
        ["schema", "scenario", "cells", "strategies", "seeds", "spec"]
    );
    assert_eq!(
        header.get("schema"),
        Some(&Value::Str(REPORT_SCHEMA.into()))
    );
    assert_eq!(REPORT_SCHEMA, "brb-lab/report-v1");
    let spec_echo = header.get("spec").expect("spec echo");
    assert_eq!(
        keys(spec_echo),
        [
            "name",
            "description",
            "cluster",
            "workload",
            "scale_catalog",
            "strategies",
            "seeds",
            "faults",
            "sweep",
            "run",
            "replay",
            "queue",
            "timeout"
        ]
    );

    // Record lines: one per (cell x strategy), stable key structure.
    let records: Vec<Value> = lines.map(|l| serde_json::from_str(l).unwrap()).collect();
    assert_eq!(records.len(), 2 * 2);
    for record in &records {
        assert_eq!(keys(record), ["cell", "axes", "summary"]);
        assert_eq!(
            keys(record.get("axes").unwrap()),
            ["load", "mean_fanout", "hedge_delay_us"]
        );
        let summary = record.get("summary").unwrap();
        assert_eq!(
            keys(summary),
            ["strategy", "runs", "p50_ms", "p95_ms", "p99_ms", "mean_ms"]
        );
        assert_eq!(keys(summary.get("p99_ms").unwrap()), ["mean", "stddev"]);
        let runs = match summary.get("runs").unwrap() {
            Value::Array(runs) => runs,
            other => panic!("runs should be an array, got {other:?}"),
        };
        assert_eq!(
            keys(&runs[0]),
            [
                "strategy",
                "seed",
                "task_latency_ms",
                "request_latency_ms",
                "hold_time_ms",
                "utilization",
                "completed_tasks",
                "measured_tasks",
                "sim_secs",
                "events",
                "dispatched",
                "congestion_signals",
                "demand_reports",
                "hedges_issued",
                "duplicate_responses"
            ]
        );
    }
}

/// The overload lane's report fields are strictly additive: with the
/// knobs on, every run line grows the same five keys *after* the legacy
/// block, and the summary aggregates them as mean/stddev pairs. (The
/// legacy shape without knobs is pinned byte-exactly above and by the
/// run-hash goldens.)
#[test]
fn overload_report_keys_are_additive() {
    let spec = ScenarioBuilder::new("overload-pin")
        .tasks(300)
        .scale_catalog(true)
        .load(1.2)
        .strategies(vec![Strategy::c3()])
        .seeds(&[1, 2])
        .bounded_queue(brb_lab::QueueSpec {
            capacity: 64,
            shed_above: None,
            codel_target_us: Some(5_000),
            codel_interval_us: Some(100_000),
            priority_stats: false,
        })
        .timeouts(brb_lab::TimeoutSpec {
            timeout_us: 20_000,
            max_retries: 1,
            backoff_base_us: 500,
            backoff_cap_us: 4_000,
            retry_budget_percent: Some(50),
        })
        .build()
        .expect("valid scenario");
    let results = runner::run_spec(&spec).expect("scenario runs");
    // The human table grows its goodput columns only when the lane ran.
    let table = report::render_table(&results);
    assert!(table.contains("goodput(t/s)") && table.contains("drop/tmo/shed"));
    let text = report::to_jsonl_string(&spec, &results);
    let mut lines = text.lines();
    let _header = lines.next().expect("header line");
    let record: Value = serde_json::from_str(lines.next().expect("record line")).unwrap();
    let summary = record.get("summary").unwrap();
    assert_eq!(
        keys(summary),
        [
            "strategy",
            "runs",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "mean_ms",
            "goodput",
            "dropped",
            "timed_out",
            "retries",
            "shed"
        ]
    );
    assert_eq!(keys(summary.get("goodput").unwrap()), ["mean", "stddev"]);
    let runs = match summary.get("runs").unwrap() {
        Value::Array(runs) => runs,
        other => panic!("runs should be an array, got {other:?}"),
    };
    for run in runs {
        assert_eq!(
            keys(run),
            [
                "strategy",
                "seed",
                "task_latency_ms",
                "request_latency_ms",
                "hold_time_ms",
                "utilization",
                "completed_tasks",
                "measured_tasks",
                "sim_secs",
                "events",
                "dispatched",
                "congestion_signals",
                "demand_reports",
                "hedges_issued",
                "duplicate_responses",
                "goodput",
                "dropped",
                "timed_out",
                "retries",
                "shed"
            ]
        );
    }
}
