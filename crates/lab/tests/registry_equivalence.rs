//! The redesign must be invisible in the numbers: registry presets are
//! data, but they lower to the exact `ExperimentConfig`s the deprecated
//! constructors built — config-byte-identical, and therefore
//! run-byte-identical (the engine is deterministic in its config).

#![allow(deprecated)] // the old path is the reference under test

use brb_core::config::{ExperimentConfig, Strategy};
use brb_core::experiment::run_experiment;
use brb_lab::registry;

fn preset_config(
    preset: &str,
    tasks: Option<usize>,
    strategy: Strategy,
    seed: u64,
) -> ExperimentConfig {
    let mut b = registry::builder(preset).expect("registry preset");
    if let Some(n) = tasks {
        b = b.tasks(n);
    }
    b.build_config(strategy, seed).expect("valid scenario")
}

/// `figure2-small` lowers byte-identically to
/// `ExperimentConfig::figure2_small` for every strategy, seed, and task
/// count — including the catalog-shrink rule.
#[test]
fn figure2_small_preset_matches_deprecated_constructor() {
    for tasks in [1usize, 100, 1_500, 8_000, 500_000] {
        for (i, strategy) in Strategy::figure2_set().into_iter().enumerate() {
            let seed = 7 * i as u64;
            let old = ExperimentConfig::figure2_small(strategy.clone(), seed, tasks);
            let new = preset_config("figure2-small", Some(tasks), strategy, seed);
            assert_eq!(
                serde_json::to_string(&old).unwrap(),
                serde_json::to_string(&new).unwrap(),
                "config drift at {tasks} tasks, seed {seed}"
            );
        }
    }
}

/// `figure2` (full scale) lowers byte-identically to
/// `ExperimentConfig::figure2`.
#[test]
fn figure2_preset_matches_deprecated_constructor() {
    for (i, strategy) in Strategy::figure2_set().into_iter().enumerate() {
        let seed = 100 + i as u64;
        let old = ExperimentConfig::figure2(strategy.clone(), seed);
        let new = preset_config("figure2", None, strategy, seed);
        assert_eq!(
            serde_json::to_string(&old).unwrap(),
            serde_json::to_string(&new).unwrap(),
            "full-scale config drift at seed {seed}"
        );
    }
}

/// End-to-end: the *results* of the pre-redesign path and the scenario
/// path are byte-identical (serialized `RunResult`), not just the
/// configs.
#[test]
fn figure2_small_preset_runs_byte_identically() {
    for strategy in [Strategy::c3(), Strategy::equal_max_credits()] {
        let old = run_experiment(ExperimentConfig::figure2_small(strategy.clone(), 42, 1_500));
        let new = run_experiment(preset_config("figure2-small", Some(1_500), strategy, 42));
        assert_eq!(
            serde_json::to_string(&old).unwrap(),
            serde_json::to_string(&new).unwrap(),
            "run results diverged for {}",
            old.strategy
        );
    }
}
