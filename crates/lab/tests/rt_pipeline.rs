//! The live-runtime lane end to end: scenario → `brb-rt` cluster →
//! `brb-lab/report-v1`, plus the sim-vs-rt concordance smoke.
//!
//! TailBench++'s argument (PAPERS.md): tail-latency results are only
//! credible when a live multi-client/multi-server harness reproduces
//! them. These tests pin (a) that the rt backend emits exactly the
//! report the simulator emits — same schema, one record per
//! (cell × strategy), latency count == tasks issued — and (b) that the
//! live runtime reproduces the simulator's qualitative strategy
//! ordering under `SimulateService`.

use brb_core::config::{SelectorKind, Strategy};
use brb_core::experiment::StrategySummary;
use brb_lab::{registry, report, rt_backend, runner, ScenarioBuilder};
use brb_sched::PolicyKind;

/// Find a strategy's summary in a single-cell result set.
fn summary<'a>(results: &'a [brb_lab::CellResult], name: &str) -> &'a StrategySummary {
    results[0]
        .summaries
        .iter()
        .find(|s| s.strategy == name)
        .unwrap_or_else(|| panic!("strategy {name} missing from results"))
}

/// `brb-lab run figure2-small --backend rt` in miniature: all five
/// figure-2 strategies (C3, both Credits, both Model) lower onto the
/// live cluster and flow through `write_jsonl` unchanged — header plus
/// one record per (cell × strategy), each with a latency sample per
/// issued task.
#[test]
fn figure2_small_rt_report_is_schema_complete() {
    const TASKS: usize = 300;
    let spec = ScenarioBuilder::from_spec(registry::spec("figure2-small").unwrap())
        .tasks(TASKS)
        .seeds(&[1])
        .build()
        .unwrap();
    let results = rt_backend::run_spec_rt(&spec).unwrap();
    assert_eq!(results.len(), 1, "figure2-small is single-cell");
    assert_eq!(results[0].summaries.len(), spec.strategies.len());

    // Every run measured every task it issued — the acceptance bar for
    // the live lane (no warm-up trimming, no dropped samples).
    for (summary, strategy) in results[0].summaries.iter().zip(&spec.strategies) {
        assert_eq!(
            summary.strategy,
            strategy.name(),
            "strategy order preserved"
        );
        for run in &summary.runs {
            assert_eq!(run.completed_tasks, TASKS);
            assert_eq!(run.measured_tasks, TASKS as u64);
            assert_eq!(run.task_latency_ms.count, TASKS as u64);
            assert!(run.task_latency_ms.p50 > 0.0);
            assert!(run.task_latency_ms.p99 >= run.task_latency_ms.p50);
            assert!(run.dispatched >= TASKS as u64);
            assert!(run.sim_secs > 0.0, "wall-clock duration recorded");
        }
    }

    // The JSONL stream is indistinguishable from a simulator report:
    // same header keys, same per-record keys, same record count.
    let text = report::to_jsonl_string(&spec, &results);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + spec.strategies.len());
    assert!(lines[0].contains(&format!("\"schema\":\"{}\"", report::REPORT_SCHEMA)));
    assert!(lines[0].contains("\"scenario\":\"figure2-small\""));
    assert!(lines[0].contains("\"spec\":"));
    for line in &lines[1..] {
        assert!(line.contains("\"cell\":"));
        assert!(line.contains("\"axes\":"));
        assert!(line.contains("\"p99_ms\":"));
        assert!(line.contains("\"runs\":"));
    }
}

/// Sim-vs-rt concordance: the `live-smoke` preset (FIFO+random direct
/// dispatch vs BRB's EqualMax over priority queues with
/// least-outstanding selection) must show the same qualitative ordering
/// on real threads as in the simulator — BRB's median and 95th
/// percentile clearly below FIFO's.
///
/// The asserted quantiles are p50/p95 with a 0.9 margin: at this task
/// count p99 is ~10 samples dominated by the heaviest playlist fetches,
/// which task-aware policies deliberately deprioritize — both backends
/// agree on that crossover too, but it is not stable enough to pin.
#[test]
fn live_runtime_reproduces_sim_strategy_ordering() {
    let spec = registry::spec("live-smoke").unwrap();
    let fifo = "random+FIFO";
    let brb = "least-outstanding+EqualMax-pq";

    // The simulator's verdict on this scenario (deterministic).
    let sim = runner::run_spec(&spec).unwrap();
    let sim_fifo = summary(&sim, fifo);
    let sim_brb = summary(&sim, brb);
    assert!(
        sim_brb.p95_ms.mean < sim_fifo.p95_ms.mean * 0.9,
        "sim lost the expected gap: BRB p95 {} vs FIFO p95 {}",
        sim_brb.p95_ms.mean,
        sim_fifo.p95_ms.mean
    );

    // The live runtime must agree.
    let rt = rt_backend::run_spec_rt(&spec).unwrap();
    let rt_fifo = summary(&rt, fifo);
    let rt_brb = summary(&rt, brb);
    assert!(
        rt_brb.p50_ms.mean < rt_fifo.p50_ms.mean * 0.9,
        "live p50 ordering diverged from sim: BRB {} vs FIFO {}",
        rt_brb.p50_ms.mean,
        rt_fifo.p50_ms.mean
    );
    assert!(
        rt_brb.p95_ms.mean < rt_fifo.p95_ms.mean * 0.9,
        "live p95 ordering diverged from sim: BRB {} vs FIFO {}",
        rt_brb.p95_ms.mean,
        rt_fifo.p95_ms.mean
    );
    // And the live lane measured every task it issued.
    for s in &rt[0].summaries {
        for run in &s.runs {
            assert_eq!(run.task_latency_ms.count as usize, run.completed_tasks);
        }
    }
}

/// Full-set concordance, part 1 — ordering: every figure-2 strategy
/// (C3, both Credits, both Model) plus a FIFO baseline runs natively on
/// the live cluster — zero `RtUnsupported` — and the live p95 ranking
/// agrees with the simulator's by Kendall tau.
///
/// The tau bar is deliberately modest (> 0): the five figure-2
/// strategies are all *good* and rank near-tied, so demanding perfect
/// rank agreement on real threads would pin scheduler noise. The native
/// credits lane must also leave evidence it really ran: demand reports
/// counted at the controller, not approximated.
#[test]
fn live_runtime_reproduces_figure2_strategy_ordering() {
    let fifo = Strategy::Direct {
        selector: SelectorKind::Random,
        policy: PolicyKind::Fifo,
        priority_queues: false,
    };
    let mut strategies = vec![fifo];
    strategies.extend(Strategy::figure2_set());
    // live-smoke sizing: seconds of wall clock, load high enough that
    // scheduling policy is visible in the tail.
    let spec = ScenarioBuilder::new("figure2-live-concordance")
        .servers(3)
        .cores(2)
        .partitions(3)
        .replication(2)
        .service_rate(800.0)
        .tasks(600)
        .load(0.7)
        .scale_catalog(true)
        .strategies(strategies.clone())
        .seeds(&[1])
        .build()
        .unwrap();

    let sim = runner::run_spec(&spec).unwrap();
    let rt = rt_backend::run_spec_rt(&spec).expect("full figure-2 set must lower natively");
    assert_eq!(rt[0].summaries.len(), strategies.len());

    let p95 = |results: &[brb_lab::CellResult]| -> Vec<f64> {
        strategies
            .iter()
            .map(|s| summary(results, &s.name()).p95_ms.mean)
            .collect()
    };
    let tau = brb_metrics::kendall_tau(&p95(&sim), &p95(&rt))
        .expect("equal-length, non-degenerate rankings");
    assert!(
        tau > 0.0,
        "live p95 ranking anti-correlated with sim: tau {tau}, sim {:?}, rt {:?}",
        p95(&sim),
        p95(&rt)
    );

    for name in [
        Strategy::equal_max_credits().name(),
        Strategy::unif_incr_credits().name(),
    ] {
        let s = summary(&rt, &name);
        assert!(
            s.runs.iter().all(|r| r.demand_reports > 0),
            "{name}: native credits lane filed no demand reports"
        );
    }
    for s in &rt[0].summaries {
        for run in &s.runs {
            assert_eq!(run.completed_tasks, 600, "{}: conservation", s.strategy);
        }
    }
}

/// Full-set concordance, part 2 — the hedging cell: in hedging's
/// canonical regime (spare capacity, rare large spikes far above the
/// trigger) both backends agree that hedged duplication recovers the
/// spike tail a FIFO baseline eats, and the live lane proves the
/// duplicates are real — hedges issued, losers cancelled or discarded,
/// conservation intact.
#[test]
fn live_runtime_reproduces_sim_hedging_win() {
    let fifo = Strategy::Direct {
        selector: SelectorKind::Random,
        policy: PolicyKind::Fifo,
        priority_queues: false,
    };
    let hedged = Strategy::Hedged {
        selector: SelectorKind::LeastOutstanding,
        delay_us: 15_000,
    };
    // 1% of requests eat a 40-80ms spike, far above the 15ms hedge
    // trigger and the ~1.25ms mean service. Both margins are sized to
    // survive a loaded test machine: the trigger sits above normal
    // queueing *plus* OS-contention stragglers (so hedges chase real
    // spikes instead of saturating the duplication budget), and the
    // spike tail is deep enough that a hedged re-dispatch recovers
    // tens of milliseconds — more than scheduler noise can blur.
    let spec = ScenarioBuilder::new("hedging-live-concordance")
        .servers(3)
        .cores(2)
        .partitions(3)
        .replication(2)
        .service_rate(800.0)
        .tasks(600)
        .load(0.3)
        .scale_catalog(true)
        .spike(0.01, 40_000, 80_000)
        .strategies(vec![fifo.clone(), hedged.clone()])
        .seeds(&[1])
        .build()
        .unwrap();

    let sim = runner::run_spec(&spec).unwrap();
    let rt = rt_backend::run_spec_rt(&spec).expect("hedging must lower natively");

    for (backend, results) in [("sim", &sim), ("rt", &rt)] {
        let h = summary(results, &hedged.name());
        let f = summary(results, &fifo.name());
        assert!(
            h.p99_ms.mean < f.p99_ms.mean,
            "{backend}: hedging must recover the spike tail, \
             hedged p99 {} vs FIFO p99 {}",
            h.p99_ms.mean,
            f.p99_ms.mean
        );
    }

    let live = summary(&rt, &hedged.name());
    for run in &live.runs {
        assert_eq!(run.completed_tasks, 600, "conservation with duplicates");
        assert!(run.hedges_issued > 0, "spikes must trigger real hedges");
        assert!(run.duplicate_responses <= run.hedges_issued);
    }
}
