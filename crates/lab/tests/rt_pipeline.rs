//! The live-runtime lane end to end: scenario → `brb-rt` cluster →
//! `brb-lab/report-v1`, plus the sim-vs-rt concordance smoke.
//!
//! TailBench++'s argument (PAPERS.md): tail-latency results are only
//! credible when a live multi-client/multi-server harness reproduces
//! them. These tests pin (a) that the rt backend emits exactly the
//! report the simulator emits — same schema, one record per
//! (cell × strategy), latency count == tasks issued — and (b) that the
//! live runtime reproduces the simulator's qualitative strategy
//! ordering under `SimulateService`.

use brb_core::experiment::StrategySummary;
use brb_lab::{registry, report, rt_backend, runner, ScenarioBuilder};

/// Find a strategy's summary in a single-cell result set.
fn summary<'a>(results: &'a [brb_lab::CellResult], name: &str) -> &'a StrategySummary {
    results[0]
        .summaries
        .iter()
        .find(|s| s.strategy == name)
        .unwrap_or_else(|| panic!("strategy {name} missing from results"))
}

/// `brb-lab run figure2-small --backend rt` in miniature: all five
/// figure-2 strategies (C3, both Credits, both Model) lower onto the
/// live cluster and flow through `write_jsonl` unchanged — header plus
/// one record per (cell × strategy), each with a latency sample per
/// issued task.
#[test]
fn figure2_small_rt_report_is_schema_complete() {
    const TASKS: usize = 300;
    let spec = ScenarioBuilder::from_spec(registry::spec("figure2-small").unwrap())
        .tasks(TASKS)
        .seeds(&[1])
        .build()
        .unwrap();
    let results = rt_backend::run_spec_rt(&spec).unwrap();
    assert_eq!(results.len(), 1, "figure2-small is single-cell");
    assert_eq!(results[0].summaries.len(), spec.strategies.len());

    // Every run measured every task it issued — the acceptance bar for
    // the live lane (no warm-up trimming, no dropped samples).
    for (summary, strategy) in results[0].summaries.iter().zip(&spec.strategies) {
        assert_eq!(
            summary.strategy,
            strategy.name(),
            "strategy order preserved"
        );
        for run in &summary.runs {
            assert_eq!(run.completed_tasks, TASKS);
            assert_eq!(run.measured_tasks, TASKS as u64);
            assert_eq!(run.task_latency_ms.count, TASKS as u64);
            assert!(run.task_latency_ms.p50 > 0.0);
            assert!(run.task_latency_ms.p99 >= run.task_latency_ms.p50);
            assert!(run.dispatched >= TASKS as u64);
            assert!(run.sim_secs > 0.0, "wall-clock duration recorded");
        }
    }

    // The JSONL stream is indistinguishable from a simulator report:
    // same header keys, same per-record keys, same record count.
    let text = report::to_jsonl_string(&spec, &results);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + spec.strategies.len());
    assert!(lines[0].contains(&format!("\"schema\":\"{}\"", report::REPORT_SCHEMA)));
    assert!(lines[0].contains("\"scenario\":\"figure2-small\""));
    assert!(lines[0].contains("\"spec\":"));
    for line in &lines[1..] {
        assert!(line.contains("\"cell\":"));
        assert!(line.contains("\"axes\":"));
        assert!(line.contains("\"p99_ms\":"));
        assert!(line.contains("\"runs\":"));
    }
}

/// Sim-vs-rt concordance: the `live-smoke` preset (FIFO+random direct
/// dispatch vs BRB's EqualMax over priority queues with
/// least-outstanding selection) must show the same qualitative ordering
/// on real threads as in the simulator — BRB's median and 95th
/// percentile clearly below FIFO's.
///
/// The asserted quantiles are p50/p95 with a 0.9 margin: at this task
/// count p99 is ~10 samples dominated by the heaviest playlist fetches,
/// which task-aware policies deliberately deprioritize — both backends
/// agree on that crossover too, but it is not stable enough to pin.
#[test]
fn live_runtime_reproduces_sim_strategy_ordering() {
    let spec = registry::spec("live-smoke").unwrap();
    let fifo = "random+FIFO";
    let brb = "least-outstanding+EqualMax-pq";

    // The simulator's verdict on this scenario (deterministic).
    let sim = runner::run_spec(&spec).unwrap();
    let sim_fifo = summary(&sim, fifo);
    let sim_brb = summary(&sim, brb);
    assert!(
        sim_brb.p95_ms.mean < sim_fifo.p95_ms.mean * 0.9,
        "sim lost the expected gap: BRB p95 {} vs FIFO p95 {}",
        sim_brb.p95_ms.mean,
        sim_fifo.p95_ms.mean
    );

    // The live runtime must agree.
    let rt = rt_backend::run_spec_rt(&spec).unwrap();
    let rt_fifo = summary(&rt, fifo);
    let rt_brb = summary(&rt, brb);
    assert!(
        rt_brb.p50_ms.mean < rt_fifo.p50_ms.mean * 0.9,
        "live p50 ordering diverged from sim: BRB {} vs FIFO {}",
        rt_brb.p50_ms.mean,
        rt_fifo.p50_ms.mean
    );
    assert!(
        rt_brb.p95_ms.mean < rt_fifo.p95_ms.mean * 0.9,
        "live p95 ordering diverged from sim: BRB {} vs FIFO {}",
        rt_brb.p95_ms.mean,
        rt_fifo.p95_ms.mean
    );
    // And the live lane measured every task it issued.
    for s in &rt[0].summaries {
        for run in &s.runs {
            assert_eq!(run.task_latency_ms.count as usize, run.completed_tasks);
        }
    }
}
