//! Conservation sweep for the overload lane.
//!
//! With every knob engaged at once — bounded queues, an admission
//! watermark, CoDel, tight timeouts with budgeted retries — and the
//! offered load past saturation, each issued task must still resolve
//! exactly once, for *every* strategy realization the engine has
//! (direct dispatch, credits, the global-queue model, hedging) across
//! several seeds:
//!
//! `completed + dropped + timed_out + shed == issued`
//!
//! This is the sweep-level companion to the engine's per-mechanism
//! unit tests: any path that double-resolves a task (NACK racing a
//! timeout, a retry racing a late original response, a hedge racing a
//! drop) or leaks one (a terminal failure that never accounts) breaks
//! the equation.

use brb_core::config::Strategy;
use brb_core::experiment::run_experiment;
use brb_lab::{QueueSpec, ScenarioBuilder, TimeoutSpec};

#[test]
fn every_strategy_conserves_tasks_under_full_overload() {
    const TASKS: usize = 800;
    let mut strategies = Strategy::figure2_set();
    strategies.push(Strategy::hedged_default());
    let spec = ScenarioBuilder::new("overload-conservation")
        .tasks(TASKS)
        .scale_catalog(true)
        .load(1.2)
        .strategies(strategies)
        .seeds(&[1, 2, 3])
        .bounded_queue(QueueSpec {
            capacity: 64,
            shed_above: Some(48),
            codel_target_us: Some(5_000),
            codel_interval_us: Some(100_000),
            priority_stats: false,
        })
        .timeouts(TimeoutSpec {
            timeout_us: 15_000,
            max_retries: 2,
            backoff_base_us: 200,
            backoff_cap_us: 2_000,
            retry_budget_percent: Some(25),
        })
        .build()
        .expect("valid scenario");
    let cells = spec.lower().expect("single-cell scenario lowers");
    assert_eq!(cells.len(), 1);
    for strategy in &cells[0].strategies {
        for &seed in &cells[0].seeds {
            let r = run_experiment(cells[0].config_for(strategy.clone(), seed));
            let ov = r.overload.unwrap_or_else(|| {
                panic!("{} seed {seed}: knobs on ⇒ stats present", strategy.name())
            });
            assert_eq!(
                r.completed_tasks as u64 + ov.dropped + ov.timed_out + ov.shed,
                TASKS as u64,
                "conservation violated for {} seed {seed}: \
                 completed {} + dropped {} + timed_out {} + shed {}",
                strategy.name(),
                r.completed_tasks,
                ov.dropped,
                ov.timed_out,
                ov.shed,
            );
            assert!(
                ov.goodput > 0.0,
                "{} seed {seed}: overload must degrade, not halt",
                strategy.name()
            );
        }
    }
}
