//! Golden pins and acceptance tests for the analysis subsystem.
//!
//! * The `brb-lab/compare-v1` and `brb-lab/capacity-v1` JSONL schemas
//!   are pinned as exact key lists, the same way `golden.rs` pins
//!   `report-v1` — key order *is* the schema.
//! * The report reader round-trips every registry preset byte-exactly
//!   (legacy, overload, and `priority_classes` shapes included), the
//!   property that lets `compare --from report.jsonl` trust a file.
//! * The paper-level acceptance claims: C3 shows a significant goodput
//!   win over random+FIFO past saturation on `retry-storm`, and every
//!   strategy has a capacity knee on `load-shedding` — both
//!   deterministic across reruns.

use brb_lab::analysis::{
    capacity_report, compare_report, markdown, parse_jsonl, CapacityOptions, CompareOptions,
    CAPACITY_SCHEMA, COMPARE_SCHEMA,
};
use brb_lab::{registry, report, runner, ScenarioBuilder};
use serde::Value;

/// Collects an object's keys in order; panics on non-objects.
fn keys(v: &Value) -> Vec<&str> {
    match v {
        Value::Object(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("expected object, got {other:?}"),
    }
}

#[test]
fn compare_jsonl_schema_is_pinned() {
    // priority-starvation exercises every compare-v1 feature at once:
    // a sweep axis, the goodput metric, and the priority_classes block.
    let spec = ScenarioBuilder::from_spec(registry::spec("priority-starvation").unwrap())
        .tasks(400)
        .build()
        .unwrap();
    let results = runner::run_spec(&spec).unwrap();
    let compared =
        compare_report(&spec, &results, "random_fifo", &CompareOptions::default()).unwrap();
    let text = compared.to_jsonl_string();
    let mut lines = text.lines();

    let header: Value = serde_json::from_str(lines.next().expect("header line")).unwrap();
    assert_eq!(
        keys(&header),
        [
            "schema",
            "scenario",
            "baseline",
            "backend",
            "cells",
            "strategies",
            "seeds",
            "metrics",
            "resamples",
            "confidence",
            "spec"
        ]
    );
    assert_eq!(
        header.get("schema"),
        Some(&Value::Str(COMPARE_SCHEMA.into()))
    );
    assert_eq!(COMPARE_SCHEMA, "brb-lab/compare-v1");

    let records: Vec<Value> = lines.map(|l| serde_json::from_str(l).unwrap()).collect();
    assert_eq!(records.len(), 3, "3 cells x 1 candidate strategy");
    for record in &records {
        assert_eq!(
            keys(record),
            ["cell", "axes", "strategy", "deltas", "priority_classes"]
        );
        assert_eq!(
            keys(record.get("axes").unwrap()),
            ["load", "mean_fanout", "hedge_delay_us", "shed_above"]
        );
        let deltas = record.get("deltas").unwrap();
        assert_eq!(
            keys(deltas),
            ["p50_ms", "p95_ms", "p99_ms", "mean_ms", "goodput"]
        );
        for metric in keys(deltas) {
            assert_eq!(
                keys(deltas.get(metric).unwrap()),
                [
                    "baseline_mean",
                    "mean",
                    "delta",
                    "delta_pct",
                    "t",
                    "df",
                    "p",
                    "ci_lo",
                    "ci_hi",
                    "significant"
                ],
                "{metric}"
            );
        }
        let classes = match record.get("priority_classes").unwrap() {
            Value::Array(classes) => classes,
            other => panic!("priority_classes should be an array, got {other:?}"),
        };
        assert!(!classes.is_empty());
        for class in classes {
            assert_eq!(keys(class), ["class", "baseline_mean", "mean", "delta"]);
        }
    }
    // Without the split, the line stops at "deltas" and the latency-only
    // metric set drops goodput (the legacy shape).
    let legacy_spec = ScenarioBuilder::from_spec(registry::spec("figure2-small").unwrap())
        .tasks(300)
        .build()
        .unwrap();
    let legacy_results = runner::run_spec(&legacy_spec).unwrap();
    let legacy = compare_report(
        &legacy_spec,
        &legacy_results,
        "c3",
        &CompareOptions::default(),
    )
    .unwrap();
    let line: Value =
        serde_json::from_str(legacy.to_jsonl_string().lines().nth(1).unwrap()).unwrap();
    assert_eq!(keys(&line), ["cell", "axes", "strategy", "deltas"]);
    assert_eq!(
        keys(line.get("axes").unwrap()),
        ["load", "mean_fanout", "hedge_delay_us"]
    );
    assert_eq!(
        keys(line.get("deltas").unwrap()),
        ["p50_ms", "p95_ms", "p99_ms", "mean_ms"]
    );
}

/// `--quantile-ci` and `--adjust-p` append keys *after* the pinned
/// compare-v1 delta set — readers keyed to the v1 schema keep working,
/// and knobs-off output never mentions the new keys at all.
#[test]
fn compare_knobs_append_additive_keys_only() {
    let spec = ScenarioBuilder::from_spec(registry::spec("figure2-small").unwrap())
        .tasks(300)
        .build()
        .unwrap();
    let results = runner::run_spec(&spec).unwrap();
    let opts = CompareOptions {
        quantile_ci: true,
        adjust_p: true,
        ..CompareOptions::default()
    };
    let compared = compare_report(&spec, &results, "c3", &opts).unwrap();
    let text = compared.to_jsonl_string();

    let mut raw_ps = Vec::new();
    let mut adjusted_ps = Vec::new();
    for line in text.lines().skip(1) {
        let record: Value = serde_json::from_str(line).unwrap();
        let deltas = record.get("deltas").unwrap();
        for metric in keys(deltas) {
            let d = deltas.get(metric).unwrap();
            let mut expected = vec![
                "baseline_mean",
                "mean",
                "delta",
                "delta_pct",
                "t",
                "df",
                "p",
                "ci_lo",
                "ci_hi",
                "significant",
                "adjusted_p",
            ];
            // Only the quantile metrics carry error bars; the per-seed
            // values behind mean_ms are not order statistics.
            if matches!(metric, "p50_ms" | "p95_ms" | "p99_ms") {
                expected.push("quantile_ci");
                let q = d.get("quantile_ci").unwrap();
                assert_eq!(
                    keys(q),
                    ["baseline_ci_lo", "baseline_ci_hi", "ci_lo", "ci_hi"],
                    "{metric}"
                );
                let band = |k: &str| match q.get(k) {
                    Some(Value::F64(n)) => *n,
                    Some(Value::U64(n)) => *n as f64,
                    other => panic!("{metric}.{k} should be a number, got {other:?}"),
                };
                assert!(band("baseline_ci_lo") <= band("baseline_ci_hi"), "{metric}");
                assert!(band("ci_lo") <= band("ci_hi"), "{metric}");
            }
            assert_eq!(keys(d), expected, "{metric}");
            let num = |k: &str| match d.get(k) {
                Some(Value::F64(n)) => *n,
                Some(Value::U64(n)) => *n as f64,
                other => panic!("{metric}.{k} should be a number, got {other:?}"),
            };
            raw_ps.push(num("p"));
            adjusted_ps.push(num("adjusted_p"));
        }
    }
    assert!(!raw_ps.is_empty());
    // BH never shrinks a p value and never exceeds 1.
    for (raw, adj) in raw_ps.iter().zip(&adjusted_ps) {
        assert!(adj >= raw && *adj <= 1.0, "raw {raw} adjusted {adj}");
    }
    // With any spread in the raw ps, the smallest one must move up
    // (its rank multiplier is strictly above 1).
    if raw_ps.iter().any(|p| p != &raw_ps[0]) {
        assert_ne!(raw_ps, adjusted_ps, "adjustment should change something");
    }

    // Knobs off on the same results: not a single new key appears.
    let plain = compare_report(&spec, &results, "c3", &CompareOptions::default())
        .unwrap()
        .to_jsonl_string();
    assert!(!plain.contains("adjusted_p"));
    assert!(!plain.contains("quantile_ci"));
}

#[test]
fn capacity_jsonl_schema_is_pinned() {
    let spec = ScenarioBuilder::from_spec(registry::spec("load-shedding").unwrap())
        .tasks(400)
        .build()
        .unwrap();
    let results = runner::run_spec(&spec).unwrap();
    let capacity = capacity_report(&spec, &results, &CapacityOptions::default()).unwrap();
    let text = capacity.to_jsonl_string();
    let mut lines = text.lines();

    let header: Value = serde_json::from_str(lines.next().expect("header line")).unwrap();
    assert_eq!(
        keys(&header),
        [
            "schema",
            "scenario",
            "backend",
            "slo_p99_ms",
            "tolerance_pct",
            "loads",
            "strategies",
            "seeds",
            "spec"
        ]
    );
    assert_eq!(
        header.get("schema"),
        Some(&Value::Str(CAPACITY_SCHEMA.into()))
    );
    assert_eq!(CAPACITY_SCHEMA, "brb-lab/capacity-v1");

    let records: Vec<Value> = lines.map(|l| serde_json::from_str(l).unwrap()).collect();
    assert_eq!(records.len(), 2, "one line per strategy");
    for record in &records {
        assert_eq!(
            keys(record),
            [
                "strategy",
                "knee_load",
                "last_safe_load",
                "current_load",
                "per_load",
                "headroom"
            ]
        );
        let per_load = match record.get("per_load").unwrap() {
            Value::Array(points) => points,
            other => panic!("per_load should be an array, got {other:?}"),
        };
        assert_eq!(per_load.len(), 3);
        for point in per_load {
            assert_eq!(keys(point), ["load", "p99_ms", "delivered_ratio", "safe"]);
        }
        let headroom = match record.get("headroom").unwrap() {
            Value::Array(rows) => rows,
            other => panic!("headroom should be an array, got {other:?}"),
        };
        assert_eq!(headroom.len(), 3);
        for row in headroom {
            assert_eq!(keys(row), ["name", "multiplier", "projected_load", "fits"]);
        }
    }
}

/// The reader is the writer's inverse on every shape the registry can
/// produce: legacy latency-only records, the additive overload block,
/// and the `priority_classes` split. Byte-exact, preset by preset.
#[test]
fn report_reader_round_trips_every_registry_preset() {
    for preset in registry::names() {
        let spec = ScenarioBuilder::from_spec(registry::spec(preset).unwrap())
            .tasks(300)
            .scale_catalog(true)
            .seeds(&[1, 2, 3])
            .build()
            .unwrap_or_else(|e| panic!("{preset}: {e}"));
        let results = runner::run_spec(&spec).unwrap_or_else(|e| panic!("{preset}: {e}"));
        let text = report::to_jsonl_string(&spec, &results);
        let parsed = parse_jsonl(&text).unwrap_or_else(|e| panic!("{preset}: {e}"));
        assert_eq!(
            report::to_jsonl_string(&parsed.spec, &parsed.results),
            text,
            "{preset}: reader is not the writer's inverse"
        );
    }
}

/// The PR's headline claim, end to end: past saturation (load 1.2x) on
/// the retry-storm scenario, C3's goodput win over random+FIFO is
/// significant — the bootstrap CI excludes zero — and the whole
/// analysis is deterministic across reruns.
#[test]
fn retry_storm_c3_goodput_win_is_significant_past_saturation() {
    let spec = ScenarioBuilder::from_spec(registry::spec("retry-storm").unwrap())
        .tasks(2_000)
        .build()
        .unwrap();
    let results = runner::run_spec(&spec).unwrap();
    let opts = CompareOptions::default();
    let compared = compare_report(&spec, &results, "random_fifo", &opts).unwrap();

    let past_saturation: Vec<_> = compared
        .lines
        .iter()
        .filter(|l| l.axes.load.is_some_and(|load| load > 1.0))
        .collect();
    assert!(!past_saturation.is_empty(), "retry-storm sweeps past 1.0x");
    for line in &past_saturation {
        assert_eq!(line.strategy, "C3");
        let goodput = line
            .deltas
            .iter()
            .find(|d| d.metric == "goodput")
            .expect("retry-storm has the overload lane");
        assert!(
            goodput.delta > 0.0,
            "C3 should win goodput at load {:?}, delta {}",
            line.axes.load,
            goodput.delta
        );
        assert!(
            goodput.significant && goodput.ci_lo > 0.0,
            "the win should be significant: CI [{}, {}]",
            goodput.ci_lo,
            goodput.ci_hi
        );
    }

    // Determinism: same inputs, byte-identical JSONL and markdown.
    let again = compare_report(&spec, &results, "random_fifo", &opts).unwrap();
    assert_eq!(again.to_jsonl_string(), compared.to_jsonl_string());
    assert_eq!(
        markdown::render_compare(&again, None),
        markdown::render_compare(&compared, None)
    );
}

/// Capacity analysis locates a knee for every strategy on the
/// load-shedding preset: the sweep runs to 1.3x, where the shed
/// watermark costs more than 5% of offered work.
#[test]
fn load_shedding_capacity_finds_a_knee_per_strategy() {
    let spec = ScenarioBuilder::from_spec(registry::spec("load-shedding").unwrap())
        .tasks(2_000)
        .build()
        .unwrap();
    let results = runner::run_spec(&spec).unwrap();
    let opts = CapacityOptions::default();
    let capacity = capacity_report(&spec, &results, &opts).unwrap();
    assert_eq!(capacity.lines.len(), 2);
    for line in &capacity.lines {
        assert!(
            line.knee_load.is_some(),
            "{}: expected a knee across loads {:?}",
            line.strategy,
            capacity.loads
        );
        assert!(
            line.last_safe_load.is_some(),
            "{}: 0.9x should be deliverable",
            line.strategy
        );
    }
    // Determinism across reruns.
    let again = capacity_report(&spec, &results, &opts).unwrap();
    assert_eq!(again.to_jsonl_string(), capacity.to_jsonl_string());
}

/// ROADMAP 4c end to end: the priority-starvation preset's per-class
/// split flows through compare into per-class starvation deltas on
/// every swept watermark.
#[test]
fn priority_starvation_produces_per_class_curves() {
    let spec = ScenarioBuilder::from_spec(registry::spec("priority-starvation").unwrap())
        .tasks(1_000)
        .build()
        .unwrap();
    let results = runner::run_spec(&spec).unwrap();
    let compared =
        compare_report(&spec, &results, "random_fifo", &CompareOptions::default()).unwrap();
    assert_eq!(compared.lines.len(), 3, "one candidate per watermark");
    for line in &compared.lines {
        assert!(line.axes.shed_above.is_some());
        let classes = line
            .priority_classes
            .as_ref()
            .expect("priority_stats is on");
        assert!(!classes.is_empty());
        // Tighter watermarks shed at the door; something terminal must
        // have been counted somewhere for the curve to mean anything.
        let total: f64 = classes.iter().map(|c| c.baseline_mean + c.mean).sum();
        assert!(total > 0.0, "no terminal failures recorded at overload");
    }
}
