//! Live-vs-simulated overload concordance, plus the rt backend's
//! report-shape pin.
//!
//! The concordance scenario is `retry-storm` shrunk to the live-smoke
//! cluster shape (3 servers × 2 workers, ~1.25ms mean services) so this
//! machine can genuinely saturate the servers: at 1.2× offered load the
//! tight 20ms deadlines fire for real, random+FIFO collapses into
//! timeouts, and C3's feedback keeps more of the offered work completing
//! — on **both** backends. The schema pin mirrors the simulator's golden
//! test: a knobs-off live run serializes with exactly the 15 legacy run
//! keys, and the overload lane appends exactly the five additive keys.

use brb_core::config::Strategy;
use brb_lab::{registry, rt_backend, runner, ScenarioBuilder, ScenarioSpec};
use serde::Value;

/// `retry-storm` at a size real threads can saturate: same strategies,
/// same tight-timeout/eager-retry knobs, smaller cluster and task count.
fn shrunk_retry_storm() -> ScenarioSpec {
    registry::builder("retry-storm")
        .expect("registry preset")
        .servers(3)
        .cores(2)
        .partitions(3)
        .replication(2)
        .service_rate(800.0)
        .tasks(1_200)
        .scale_catalog(true)
        .sweep_load(&[1.2])
        .seeds(&[1])
        .build()
        .expect("valid scenario")
}

#[test]
fn rt_retry_storm_concords_with_sim() {
    let spec = shrunk_retry_storm();
    let live = rt_backend::run_spec_rt(&spec).expect("live run");
    let sim = runner::run_spec(&spec).expect("sim run");

    for (backend, results) in [("rt", &live), ("sim", &sim)] {
        assert_eq!(results.len(), 1);
        let fifo = &results[0].summaries[0].runs[0];
        let c3 = &results[0].summaries[1].runs[0];
        assert_eq!(fifo.strategy, "random+FIFO");
        assert_eq!(c3.strategy, "C3");
        for run in [fifo, c3] {
            let o = run.overload.expect("overload lane on ⇒ stats present");
            assert_eq!(
                run.completed_tasks as u64 + o.dropped + o.timed_out + o.shed,
                1_200,
                "{backend}/{}: conservation must hold",
                run.strategy
            );
        }
        let of = fifo.overload.unwrap();
        let oc = c3.overload.unwrap();
        assert!(
            of.timed_out > 0,
            "{backend}: random+FIFO must shed goodput into timeouts past 1.0×"
        );
        assert!(
            oc.goodput > of.goodput,
            "{backend}: C3 goodput {:.0} must beat random+FIFO {:.0} past 1.0×",
            oc.goodput,
            of.goodput
        );
    }

    // The live collapse is substantial, not marginal: the storm times
    // out over a quarter of random+FIFO's tasks.
    let of = live[0].summaries[0].runs[0].overload.unwrap();
    assert!(
        of.timed_out * 4 > 1_200,
        "live random+FIFO should time out >25% of tasks, got {}",
        of.timed_out
    );
}

/// The hedging lane composes with the overload lane: duplicated
/// requests flow through bounded queues and deadline timers, losers are
/// cancelled or discarded, and the task conservation contract still
/// holds on both backends — a duplicate must never double-complete or
/// double-fail its task.
#[test]
fn rt_overload_conserves_with_hedging() {
    use brb_core::config::SelectorKind;
    let spec = registry::builder("retry-storm")
        .expect("registry preset")
        .servers(3)
        .cores(2)
        .partitions(3)
        .replication(2)
        .service_rate(800.0)
        .tasks(800)
        .scale_catalog(true)
        .sweep_load(&[1.1])
        .strategies(vec![Strategy::Hedged {
            selector: SelectorKind::LeastOutstanding,
            delay_us: 8_000,
        }])
        .seeds(&[1])
        .build()
        .expect("valid scenario");
    let live = rt_backend::run_spec_rt(&spec).expect("live run");
    let sim = runner::run_spec(&spec).expect("sim run");
    for (backend, results) in [("rt", &live), ("sim", &sim)] {
        let run = &results[0].summaries[0].runs[0];
        let o = run.overload.expect("overload lane on ⇒ stats present");
        assert_eq!(
            run.completed_tasks as u64 + o.dropped + o.timed_out + o.shed,
            800,
            "{backend}: conservation must hold with duplicates in flight"
        );
    }
    // Past saturation the queues sit above the hedge trigger, so the
    // live lane must have hedged for real — and every duplicate response
    // is accounted, never double-counted.
    let run = &live[0].summaries[0].runs[0];
    assert!(run.hedges_issued > 0, "storm must trigger live hedges");
    assert!(run.duplicate_responses <= run.hedges_issued);
}

/// Collects an object's keys in order; panics on non-objects.
fn keys(v: &Value) -> Vec<&str> {
    match v {
        Value::Object(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("expected object, got {other:?}"),
    }
}

const LEGACY_RUN_KEYS: [&str; 15] = [
    "strategy",
    "seed",
    "task_latency_ms",
    "request_latency_ms",
    "hold_time_ms",
    "utilization",
    "completed_tasks",
    "measured_tasks",
    "sim_secs",
    "events",
    "dispatched",
    "congestion_signals",
    "demand_reports",
    "hedges_issued",
    "duplicate_responses",
];

fn tiny() -> ScenarioBuilder {
    ScenarioBuilder::new("rt-schema-pin")
        .servers(3)
        .cores(2)
        .partitions(3)
        .replication(2)
        .service_rate(20_000.0)
        .tasks(150)
        .load(0.5)
        .scale_catalog(true)
        .strategies(vec![Strategy::c3()])
        .seeds(&[1])
}

#[test]
fn rt_report_shape_is_pinned() {
    // Knobs off: the live run must serialize byte-compatibly with the
    // legacy report — exactly the 15 keys, no overload block.
    let spec = tiny().build().expect("valid scenario");
    let results = rt_backend::run_spec_rt(&spec).expect("live run");
    let run = &results[0].summaries[0].runs[0];
    assert!(run.overload.is_none() && run.priority_classes.is_none());
    let v: Value = serde_json::from_str(&serde_json::to_string(run).unwrap()).unwrap();
    assert_eq!(keys(&v), LEGACY_RUN_KEYS);

    // Knobs on: exactly the five additive overload keys, after the
    // legacy block, in schema order.
    let spec = tiny()
        .load(1.2)
        .bounded_queue(brb_lab::QueueSpec {
            capacity: 8,
            shed_above: Some(6),
            codel_target_us: None,
            codel_interval_us: None,
            priority_stats: false,
        })
        .timeouts(brb_lab::TimeoutSpec {
            timeout_us: 5_000,
            max_retries: 1,
            backoff_base_us: 100,
            backoff_cap_us: 1_000,
            retry_budget_percent: Some(10),
        })
        .build()
        .expect("valid scenario");
    let results = rt_backend::run_spec_rt(&spec).expect("live run");
    let run = &results[0].summaries[0].runs[0];
    let v: Value = serde_json::from_str(&serde_json::to_string(run).unwrap()).unwrap();
    let expected: Vec<&str> = LEGACY_RUN_KEYS
        .iter()
        .copied()
        .chain(["goodput", "dropped", "timed_out", "retries", "shed"])
        .collect();
    assert_eq!(keys(&v), expected);
}
