//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the in-repo serde
//! stand-in. Parses the item's token stream directly (no `syn`), covering
//! exactly the shapes this workspace uses: non-generic named structs,
//! tuple structs, and enums with unit / named-field / tuple variants.
//! The only recognised field attribute is `#[serde(default)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips attributes (`#[...]`), reporting whether any was
/// `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") && body.contains("default") {
                        has_default = true;
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, has_default)
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advances past a type, stopping at a top-level `,` (angle brackets
/// tracked so `Map<K, V>` commas don't split fields).
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (next, default) = skip_attrs(&toks, i);
        i = skip_vis(&toks, next);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected ':' after field {name}, got {other:?}"),
        }
        i = skip_type(&toks, i);
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        let (next, _) = skip_attrs(&toks, i);
        i = skip_vis(&toks, next);
        i = skip_type(&toks, i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (next, _) = skip_attrs(&toks, i);
        i = next;
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("derive stand-in does not support generic type {name}");
        }
    }
    match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g),
                }
            }
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for {other} items"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{elems}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let elems: String = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{elems}])")
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                                     (::std::string::String::from(\"{vn}\"), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: String = fields
                                .iter()
                                .map(|f| format!("{},", f.name))
                                .collect();
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0})),",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                     (::std::string::String::from(\"{vn}\"), \
                                      ::serde::Value::Object(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let helper = if f.default { "field_default" } else { "field" };
                    format!(
                        "{0}: ::serde::__private::{helper}(__obj, \"{0}\")?,",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = ::serde::__private::as_object(__v, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let elems: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                    .collect();
                format!(
                    "let __items = ::serde::__private::as_array(__v, {arity}, \"{name}\")?;\n\
                     ::std::result::Result::Ok({name}({elems}))"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        VariantKind::Tuple(arity) => {
                            if *arity == 1 {
                                format!(
                                    "\"{vn}\" => {{\n\
                                         let __p = ::serde::__private::payload(__payload, \"{vn}\")?;\n\
                                         ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__p)?))\n\
                                     }}"
                                )
                            } else {
                                let elems: String = (0..*arity)
                                    .map(|i| {
                                        format!(
                                            "::serde::Deserialize::from_value(&__items[{i}])?,"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "\"{vn}\" => {{\n\
                                         let __p = ::serde::__private::payload(__payload, \"{vn}\")?;\n\
                                         let __items = ::serde::__private::as_array(__p, {arity}, \"{vn}\")?;\n\
                                         ::std::result::Result::Ok({name}::{vn}({elems}))\n\
                                     }}"
                                )
                            }
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    let helper =
                                        if f.default { "field_default" } else { "field" };
                                    format!(
                                        "{0}: ::serde::__private::{helper}(__obj, \"{0}\")?,",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __p = ::serde::__private::payload(__payload, \"{vn}\")?;\n\
                                     let __obj = ::serde::__private::as_object(__p, \"{vn}\")?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let (__tag, __payload) = ::serde::__private::variant(__v)?;\n\
                         match __tag {{\n\
                             {arms}\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
