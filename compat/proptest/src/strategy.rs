//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values for property tests. No shrinking: the
/// stand-in reports the failing inputs via the assertion panic instead.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy
    /// `f` builds from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Boxes the strategy behind a uniform type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Box::new(move |rng| inner.gen_value(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.gen_value(rng)).gen_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// A boxed generator arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut StdRng) -> T>;

/// Uniform choice among several strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<UnionArm<T>>);

impl<T> Union<T> {
    /// Wraps the pre-boxed arms.
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.0.len());
        (self.0[i])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}
