//! Minimal offline stand-in for `proptest`: deterministic random testing
//! without shrinking. Each `proptest!` test derives its RNG seed from the
//! test's module path and name, so failures reproduce exactly; set
//! `PROPTEST_CASES` to change the per-test case count.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

/// Per-test configuration (`cases` is the only knob this stand-in reads).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// Builds the deterministic RNG for one named test.
pub fn test_rng(name: &str) -> StdRng {
    // FNV-1a over the test's full path: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Strategies over booleans.
pub mod bool {
    use super::strategy::Strategy;
    use rand::Rng;

    /// Generates booleans by fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The fair-coin boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen_value(&self, rng: &mut rand::rngs::StdRng) -> bool {
            rng.random()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts inside a property (this stand-in panics, which fails the case
/// with the generated inputs in the panic backtrace).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` inside the case loop, so it is only usable at
/// the top statement level of a property body (all this workspace needs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly picks one of several same-valued strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$($strat),+]
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                Box::new(move |rng: &mut ::rand::rngs::StdRng| {
                    $crate::strategy::Strategy::gen_value(&s, rng)
                }) as Box<dyn Fn(&mut ::rand::rngs::StdRng) -> _>
            }),+
        ])
    };
}

/// Declares property tests: `fn name(pattern in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr)) => {};
    (cfg = ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vectors(x in 5u64..10, v in crate::collection::vec(0u32..3, 2..6)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn tuples_and_bools(t in (0u64..4, crate::bool::ANY)) {
            prop_assert!(t.0 < 4);
            let _: bool = t.1;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
        #[test]
        fn config_cases_is_respected(_x in 0u64..2) {
            // Runs exactly 3 times; nothing to assert beyond not crashing.
        }
    }

    #[test]
    fn oneof_flat_map_and_just() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_rng("oneof");
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        for _ in 0..50 {
            assert!((1u32..=3).contains(&s.gen_value(&mut rng)));
        }
        let fm = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u64..10, n..=n));
        for _ in 0..20 {
            let v = fm.gen_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let mapped = (0u32..5).prop_map(|x| x * 2);
        for _ in 0..20 {
            assert!(mapped.gen_value(&mut rng) % 2 == 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        let s = 0u64..1_000_000;
        for _ in 0..10 {
            assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
        }
    }
}
