//! Minimal offline stand-in for the `bytes` crate: a cheaply-clonable,
//! immutable byte buffer. Only the API surface this workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted immutable byte buffer. Cloning is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied once into the shared buffer; the
    /// real crate borrows, but the observable API is identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice (the inherent method the real crate offers
    /// alongside the `AsRef` impl).
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.data.len())
    }
}
