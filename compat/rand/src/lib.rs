//! Minimal offline stand-in for the `rand` crate (0.9-style API subset):
//! the [`Rng`] trait with `random`/`random_range`, [`SeedableRng`], and a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! Determinism is the only contract this workspace relies on: equal seeds
//! yield equal streams, across platforms and releases of this repo.

use std::ops::{Range, RangeInclusive};

/// A source of randomness. `next_u64` is the only required method; the
/// typed helpers mirror rand 0.9's `Rng` surface.
pub trait Rng {
    /// The next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: full range;
    /// `bool`: fair coin).
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A fair coin flip weighted by `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from raw random bits (the `random()` family).
pub trait FromRng {
    /// Draws one value from `rng`'s standard distribution for this type.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire): maps 64 random bits onto
/// `[0, span)` without modulo bias worth caring about here.
#[inline]
fn bounded(rng_bits: u64, span: u64) -> u64 {
    ((rng_bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u: f64 = rng.random();
                self.start + (self.end - self.start) * u as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u: f64 = rng.random();
                lo + (hi - lo) * u as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Construction from seeds (only the `seed_from_u64` entry point the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: the standard seed-expansion function.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256++ (Blackman/Vigna),
    /// seeded by SplitMix64 expansion — fast, high quality, and stable
    /// across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_stream_independence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let x = rng.random_range(0u64..u64::MAX);
            assert!(x < u64::MAX);
        }
    }

    #[test]
    fn bounded_sampling_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
