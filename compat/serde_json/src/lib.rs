//! Minimal offline stand-in for `serde_json`: renders and parses the
//! in-repo serde [`Value`] tree. Output is deterministic (object fields
//! keep insertion order; floats use Rust's shortest round-trip form).

use std::fmt;
use std::io::Write;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(Error::msg)
}

/// Parses a value of `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip float form; integral
        // values render with a trailing `.0` exactly as serde_json does.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/Infinity; serde_json writes null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format_args!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format_args!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format_args!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format_args!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::msg(format_args!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::msg)?,
                                16,
                            )
                            .map_err(Error::msg)?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::msg("bad \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format_args!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::msg)?;
                    let c = rest.chars().next().ok_or_else(|| Error::msg("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(Error::msg)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(Error::msg)
        } else {
            text.parse::<u64>().map(Value::U64).map_err(Error::msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(18446744073709551615)),
            ("b".into(), Value::I64(-5)),
            ("c".into(), Value::F64(0.25)),
            (
                "d".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("e".into(), Value::Str("q\"uo\\te\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::U64(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"k\": [\n"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u16, 0.5f64), (2, 1.5)];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u16, f64)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn floats_render_round_trippably() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        let x: f64 = from_str(&to_string(&1e300f64).unwrap()).unwrap();
        assert_eq!(x, 1e300);
    }
}
