//! Minimal offline stand-in for `crossbeam`: an MPMC unbounded channel
//! (clonable senders *and* receivers) plus a polling `select!` macro
//! covering the two-arm `recv(..) -> msg => ..` form this workspace uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error: all receivers dropped; returns the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Result of a deadline-bounded receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message queued.
        Timeout,
        /// No message queued and all senders dropped.
        Disconnected,
    }

    /// Result of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// No message queued and all senders dropped.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().expect("channel poisoned");
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake blocked receivers so they observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).expect("channel poisoned");
            }
        }

        /// Blocks until a message arrives, every sender is gone, or
        /// `deadline` passes — the wait primitive behind the live
        /// runtime's client-side timeout timers.
        pub fn recv_deadline(&self, deadline: std::time::Instant) -> Result<T, RecvTimeoutError> {
            let mut q = self.0.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .0
                    .ready
                    .wait_timeout(q, remaining)
                    .expect("channel poisoned");
                q = guard;
            }
        }

        /// [`Receiver::recv_deadline`] with a relative duration.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(std::time::Instant::now() + timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().expect("channel poisoned");
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Queued message count.
        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel poisoned").len()
        }

        /// Whether no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    // Re-export the crate-root macro under `crossbeam::channel::select!`,
    // the path the real crate exposes it at.
    pub use crate::select;
}

/// Two-arm `select!` over receivers, implemented by polling, plus an
/// optional `default(timeout)` arm that fires if neither receiver
/// yields within the timeout — the subset the workspace uses. The arm
/// bodies run *outside* the polling loop so `break`/`continue` inside
/// them bind to the caller's own loops, as with the real macro.
#[macro_export]
macro_rules! select {
    (recv($rx1:expr) -> $msg1:pat => $body1:expr,
     recv($rx2:expr) -> $msg2:pat => $body2:expr,
     default($timeout:expr) => $body3:expr $(,)?) => {{
        enum __Sel<A, B> {
            A(A),
            B(B),
            Default,
        }
        let __deadline = std::time::Instant::now() + $timeout;
        let __fired = loop {
            match $rx1.try_recv() {
                Ok(v) => break __Sel::A(Ok(v)),
                Err($crate::channel::TryRecvError::Disconnected) => {
                    break __Sel::A(Err($crate::channel::RecvError))
                }
                Err($crate::channel::TryRecvError::Empty) => {}
            }
            match $rx2.try_recv() {
                Ok(v) => break __Sel::B(Ok(v)),
                Err($crate::channel::TryRecvError::Disconnected) => {
                    break __Sel::B(Err($crate::channel::RecvError))
                }
                Err($crate::channel::TryRecvError::Empty) => {}
            }
            if std::time::Instant::now() >= __deadline {
                break __Sel::Default;
            }
            std::thread::sleep(std::time::Duration::from_micros(20));
        };
        match __fired {
            __Sel::A($msg1) => $body1,
            __Sel::B($msg2) => $body2,
            __Sel::Default => $body3,
        }
    }};
    (recv($rx1:expr) -> $msg1:pat => $body1:expr,
     recv($rx2:expr) -> $msg2:pat => $body2:expr $(,)?) => {{
        enum __Sel<A, B> {
            A(A),
            B(B),
        }
        let __fired = loop {
            match $rx1.try_recv() {
                Ok(v) => break __Sel::A(Ok(v)),
                Err($crate::channel::TryRecvError::Disconnected) => {
                    break __Sel::A(Err($crate::channel::RecvError))
                }
                Err($crate::channel::TryRecvError::Empty) => {}
            }
            match $rx2.try_recv() {
                Ok(v) => break __Sel::B(Ok(v)),
                Err($crate::channel::TryRecvError::Disconnected) => {
                    break __Sel::B(Err($crate::channel::RecvError))
                }
                Err($crate::channel::TryRecvError::Empty) => {}
            }
            std::thread::sleep(std::time::Duration::from_micros(20));
        };
        match __fired {
            __Sel::A($msg1) => $body1,
            __Sel::B($msg2) => $body2,
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn mpmc_round_trip_and_disconnect() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx2.recv(), Ok(2));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_deadline_times_out_and_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::{Duration, Instant};
        let (tx, rx) = unbounded::<u32>();
        // Empty channel with a live sender: the deadline fires.
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_deadline(t0 + Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(10));
        // A queued message is delivered without waiting out the deadline.
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        // All senders gone: disconnection, not a timeout.
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_prefers_ready_arm_and_sees_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let (_stop_tx, stop_rx) = unbounded::<()>();
        tx.send(7).unwrap();
        let got = select! {
            recv(rx) -> msg => msg.unwrap(),
            recv(stop_rx) -> _ => unreachable!("stop not signalled"),
        };
        assert_eq!(got, 7);
    }

    #[test]
    fn select_default_fires_on_timeout_and_yields_to_messages() {
        use std::time::{Duration, Instant};
        let (tx, rx) = unbounded::<u32>();
        let (_stop_tx, stop_rx) = unbounded::<()>();
        // Nothing ready: the default arm fires after the timeout.
        let t0 = Instant::now();
        let got = select! {
            recv(rx) -> _ => unreachable!("channel is empty"),
            recv(stop_rx) -> _ => unreachable!("stop not signalled"),
            default(Duration::from_millis(5)) => 42u32,
        };
        assert_eq!(got, 42);
        assert!(t0.elapsed() >= Duration::from_millis(5));
        // A ready message beats the default.
        tx.send(9).unwrap();
        let got = select! {
            recv(rx) -> msg => msg.unwrap(),
            recv(stop_rx) -> _ => unreachable!("stop not signalled"),
            default(Duration::from_secs(5)) => unreachable!("message was ready"),
        };
        assert_eq!(got, 9);
    }
}
