//! Lock-order detector tests: a deliberate A→B / B→A cycle must panic
//! naming both acquisition sites; consistent orders and condvar waits
//! must stay silent.
//!
//! Everything is gated on `debug_assertions` — in release builds the
//! detector compiles away and there is nothing to test.

#![cfg(debug_assertions)]

use parking_lot::{Condvar, Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic>".to_string())
}

#[test]
fn ab_ba_cycle_panics_with_both_sites() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);

    // Establish A → B.
    {
        let _ga = a.lock();
        let site_ab = line!() + 1;
        let _gb = b.lock();
        drop(_gb);
        drop(_ga);

        // Now acquire in the reverse order: B → A must trip the detector.
        let _gb = b.lock();
        let site_ba = line!() + 2;
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ga = a.lock();
        }))
        .expect_err("reverse-order acquisition must panic");
        let msg = panic_message(err);
        assert!(
            msg.contains("lock-order violation"),
            "unexpected panic message: {msg}"
        );
        // Both acquisition sites must be named: where B→A was attempted
        // (this file, `site_ba`) and where A→B was established
        // (this file, `site_ab`).
        for line in [site_ab, site_ba] {
            let needle = format!("lock_order.rs:{line}");
            assert!(
                msg.contains(&needle),
                "panic must name acquisition site {needle}; got: {msg}"
            );
        }
    }
}

#[test]
fn consistent_nesting_is_silent() {
    let outer = Mutex::new(());
    let inner = Mutex::new(());
    for _ in 0..100 {
        let _go = outer.lock();
        let _gi = inner.lock();
    }
}

#[test]
fn three_lock_transitive_cycle_panics() {
    let a = Mutex::new(());
    let b = Mutex::new(());
    let c = Mutex::new(());
    // A → B, B → C.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    // C → A closes the cycle through the transitive path A →* C.
    let _gc = c.lock();
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _ga = a.lock();
    }))
    .expect_err("transitive cycle must panic");
    assert!(panic_message(err).contains("lock-order violation"));
}

#[test]
fn rwlock_participates_in_ordering() {
    let m = Mutex::new(());
    let rw = RwLock::new(());
    // Mutex → RwLock(write).
    {
        let _gm = m.lock();
        let _gw = rw.write();
    }
    // RwLock(read) → Mutex is the reverse order.
    let _gr = rw.read();
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gm = m.lock();
    }))
    .expect_err("rwlock/mutex cycle must panic");
    assert!(panic_message(err).contains("lock-order violation"));
}

#[test]
fn reentrant_reads_are_not_a_cycle() {
    let rw = RwLock::new(5u32);
    let g1 = rw.read();
    let g2 = rw.read();
    assert_eq!(*g1 + *g2, 10);
}

#[test]
fn condvar_wait_releases_held_entry() {
    // While parked in `wait`, the mutex is not held; acquiring other
    // locks from the waking thread must not fabricate edges involving it.
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let pair2 = Arc::clone(&pair);
    let waiter = std::thread::spawn(move || {
        let (m, cv) = &*pair2;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
    });
    {
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        *ready = true;
        cv.notify_all();
    }
    waiter.join().expect("waiter must finish cleanly");
}

#[test]
fn detector_releases_on_guard_drop() {
    // Dropping guards in any order must unwind the held stack correctly:
    // A → B established, then A alone, then B alone — no false cycle.
    let a = Mutex::new(());
    let b = Mutex::new(());
    {
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // out-of-order drop
        drop(gb);
    }
    let _gb = b.lock();
    drop(_gb);
    let _ga = a.lock();
}
