//! Debug-build lock-order detector.
//!
//! Every [`crate::Mutex`]/[`crate::RwLock`] gets a lazily-assigned site
//! ID; each thread keeps a stack of the locks it currently holds; every
//! nested acquisition feeds a process-global order graph (`a → b` means
//! "b was acquired while holding a", stamped with the acquisition site
//! that first established the edge). Before a new edge `a → b` is
//! recorded, the detector checks whether `b →* a` is already reachable —
//! if so, the two orders form a cycle (a potential deadlock) and the
//! detector panics naming **both** acquisition sites, turning every
//! existing `brb-rt` test into a free deadlock check.
//!
//! Compiled only under `debug_assertions` (release builds carry zero
//! overhead) and switchable off with `BRB_LOCK_ORDER=0`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// An acquisition site: where some `lock()`/`read()`/`write()` was called.
pub(crate) type Site = &'static Location<'static>;

static NEXT_ID: AtomicU32 = AtomicU32::new(1);

/// Assigns (once) and returns the lock's site ID. IDs are never reused,
/// so edges from dropped locks can't alias a new lock.
pub(crate) fn lock_id(slot: &AtomicU32) -> u32 {
    let cur = slot.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => id,
        Err(existing) => existing,
    }
}

#[derive(Default)]
struct OrderGraph {
    /// `edges[a][b]` = site that first acquired `b` while holding `a`.
    edges: BTreeMap<u32, BTreeMap<u32, Site>>,
}

impl OrderGraph {
    /// If `from →* to`, returns the site of the final edge on one such
    /// path (the acquisition that established the conflicting order).
    fn find_path(&self, from: u32, to: u32) -> Option<Site> {
        // Direct edge first: the clearest diagnostic.
        if let Some(site) = self.edges.get(&from).and_then(|m| m.get(&to)) {
            return Some(*site);
        }
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            if let Some(next) = self.edges.get(&n) {
                for (&m, &site) in next {
                    if m == to {
                        return Some(site);
                    }
                    if !seen.contains(&m) {
                        seen.push(m);
                        stack.push(m);
                    }
                }
            }
        }
        None
    }
}

fn graph() -> &'static StdMutex<OrderGraph> {
    static G: OnceLock<StdMutex<OrderGraph>> = OnceLock::new();
    G.get_or_init(Default::default)
}

fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("BRB_LOCK_ORDER").map_or(true, |v| v != "0"))
}

thread_local! {
    /// Locks currently held by this thread: `(id, acquisition site)`.
    static HELD: RefCell<Vec<(u32, Site)>> = const { RefCell::new(Vec::new()) };
}

/// Records an acquisition. Called *before* blocking on the real lock so
/// a genuine A/B deadlock panics one of the two threads instead of
/// hanging the test harness. Panics on a lock-order cycle.
pub(crate) fn acquire(id: u32, site: Site) {
    if !enabled() {
        return;
    }
    // Decide outside the RefCell borrow so a detector panic can never
    // collide with guard drops during unwinding.
    let violation: Option<String> = HELD.with(|h| {
        let held = h.borrow();
        if held.is_empty() {
            return None;
        }
        let mut g = graph().lock().unwrap_or_else(|p| p.into_inner());
        for &(hid, hsite) in held.iter() {
            if hid == id {
                continue; // reentrant reads of the same RwLock
            }
            if let Some(conflict) = g.find_path(id, hid) {
                return Some(format!(
                    "lock-order violation (potential deadlock):\n  \
                     acquiring lock #{id} at {site}\n  \
                     while holding lock #{hid} (acquired at {hsite}),\n  \
                     but the reverse order lock #{id} -> lock #{hid} was \
                     established at {conflict}\n  \
                     (brb lock-order detector; set BRB_LOCK_ORDER=0 to disable)"
                ));
            }
            g.edges.entry(hid).or_default().entry(id).or_insert(site);
        }
        None
    });
    if let Some(msg) = violation {
        panic!("{msg}");
    }
    HELD.with(|h| h.borrow_mut().push((id, site)));
}

/// Records a release (guard drop, or a `Condvar::wait` letting go of the
/// lock while parked). Removes the most recent entry for `id`.
pub(crate) fn release(id: u32) {
    if !enabled() {
        return;
    }
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(hid, _)| hid == id) {
            held.remove(pos);
        }
    });
}
