//! Minimal offline stand-in for `parking_lot`: std-backed `Mutex`,
//! `RwLock` and `Condvar` with parking_lot's panic-free, guard-returning
//! API (poisoning is swallowed, as parking_lot has none).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
};

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<StdMutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }))
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Atomically releases the guard's lock and waits; re-acquires before
    /// returning (parking_lot signature: mutates the guard in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.0 = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose guards come back without `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}
