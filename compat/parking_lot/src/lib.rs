//! Minimal offline stand-in for `parking_lot`: std-backed `Mutex`,
//! `RwLock` and `Condvar` with parking_lot's panic-free, guard-returning
//! API (poisoning is swallowed, as parking_lot has none).
//!
//! Debug builds additionally run a **lock-order detector** (see
//! [`order`]-module docs): every lock gets a site ID, each thread tracks
//! the locks it holds, and a global order graph panics on the first
//! cyclic acquisition order — naming both acquisition sites — instead of
//! letting a rare interleaving deadlock a test run. Release builds
//! compile all of it away; `BRB_LOCK_ORDER=0` disables it at runtime.

use std::fmt;
use std::ops::{Deref, DerefMut};
#[cfg(debug_assertions)]
use std::panic::Location;
#[cfg(debug_assertions)]
use std::sync::atomic::AtomicU32;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

#[cfg(debug_assertions)]
mod order;

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    id: AtomicU32,
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    lock_id: u32,
    /// `Option` so `Condvar::wait` can temporarily take the std guard.
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            id: AtomicU32::new(0),
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let lock_id = {
            let id = order::lock_id(&self.id);
            order::acquire(id, Location::caller());
            id
        };
        MutexGuard {
            #[cfg(debug_assertions)]
            lock_id,
            inner: Some(match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        order::release(self.lock_id);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Atomically releases the guard's lock and waits; re-acquires before
    /// returning (parking_lot signature: mutates the guard in place).
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        // The lock is genuinely released while parked; mirror that in the
        // held-lock stack so cross-lock waits don't fabricate edges.
        #[cfg(debug_assertions)]
        order::release(guard.lock_id);
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        #[cfg(debug_assertions)]
        order::acquire(guard.lock_id, Location::caller());
        guard.inner = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock whose guards come back without `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    id: AtomicU32,
    inner: StdRwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    lock_id: u32,
    inner: StdRwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    lock_id: u32,
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            id: AtomicU32::new(0),
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let lock_id = {
            let id = order::lock_id(&self.id);
            order::acquire(id, Location::caller());
            id
        };
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            lock_id,
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquires an exclusive write guard.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let lock_id = {
            let id = order::lock_id(&self.id);
            order::acquire(id, Location::caller());
            id
        };
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            lock_id,
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Drop for RwLockReadGuard<'a, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        order::release(self.lock_id);
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized> Drop for RwLockWriteGuard<'a, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        order::release(self.lock_id);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}
