//! Minimal offline stand-in for the `toml` crate, covering the subset
//! this workspace reads and writes:
//!
//! * table headers `[a.b]` and arrays of tables `[[a.b]]` (dotted paths)
//! * `key = value` pairs with bare, quoted, and dotted keys
//! * basic (`"..."` with escapes) and literal (`'...'`) strings
//! * integers (sign + underscores), floats (incl. `inf`/`nan`), booleans
//! * arrays (may span lines) and single-line inline tables
//! * `#` comments
//!
//! No datetimes, no multi-line strings. Like the sibling `serde_json`
//! stand-in, conversion goes through the in-repo [`serde::Value`] tree:
//! structs are tables, unit enum variants are strings, data-carrying
//! variants are single-key tables. `Option::None` fields are *omitted*
//! on output (TOML has no null) and absent keys deserialize to `None`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A TOML parse/serialize error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Deserializes a value from a TOML document.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

/// Serializes a value as a TOML document (the value must map to a table).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_value();
    let mut out = String::new();
    emit_table(&v, &mut Vec::new(), &mut out)?;
    Ok(out)
}

/// Alias for [`to_string`]; the document layout is already "pretty"
/// (nested tables become `[section]` blocks).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::msg(format_args!("TOML line {}: {msg}", self.line))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, and newlines.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Requires end-of-line (allowing a trailing comment) after a
    /// key/value pair or header.
    fn expect_eol(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(b'\r') => {
                self.pos += 1;
                match self.peek() {
                    Some(b'\n') => {
                        self.bump();
                        Ok(())
                    }
                    _ => Err(self.err("bare carriage return")),
                }
            }
            Some(c) => Err(self.err(format_args!("expected end of line, got {:?}", c as char))),
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let mut root = Value::Object(Vec::new());
        // Path of the currently open `[table]` / `[[table]]` header.
        let mut current: Vec<String> = Vec::new();
        loop {
            self.skip_trivia();
            match self.peek() {
                None => break,
                Some(b'[') => {
                    self.bump();
                    let array_of_tables = self.peek() == Some(b'[');
                    if array_of_tables {
                        self.bump();
                    }
                    self.skip_ws();
                    let path = self.parse_key_path()?;
                    self.skip_ws();
                    if self.bump() != Some(b']') {
                        return Err(self.err("expected ']' closing table header"));
                    }
                    if array_of_tables && self.bump() != Some(b']') {
                        return Err(self.err("expected ']]' closing array-of-tables header"));
                    }
                    self.expect_eol()?;
                    if array_of_tables {
                        push_array_table(&mut root, &path).map_err(|m| self.err(m))?;
                    } else {
                        open_table(&mut root, &path, true).map_err(|m| self.err(m))?;
                    }
                    current = path;
                }
                Some(_) => {
                    let path = self.parse_key_path()?;
                    self.skip_ws();
                    if self.bump() != Some(b'=') {
                        return Err(self.err("expected '=' after key"));
                    }
                    self.skip_ws();
                    let value = self.parse_value()?;
                    self.expect_eol()?;
                    let mut full = current.clone();
                    full.extend(path);
                    insert(&mut root, &full, value).map_err(|m| self.err(m))?;
                }
            }
        }
        Ok(root)
    }

    /// A dotted key path: `a.b."c d"`.
    fn parse_key_path(&mut self) -> Result<Vec<String>, Error> {
        let mut path = vec![self.parse_key()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'.') {
                self.bump();
                self.skip_ws();
                path.push(self.parse_key()?);
            } else {
                break;
            }
        }
        Ok(path)
    }

    fn parse_key(&mut self) -> Result<String, Error> {
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => self.parse_literal_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
                {
                    self.pos += 1;
                }
                Ok(std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("bare keys are ASCII")
                    .to_string())
            }
            other => Err(self.err(format_args!("expected key, got {other:?}"))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some(b'\'') => Ok(Value::Str(self.parse_literal_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't') | Some(b'f') if self.looks_like_bool() => {
                if self.bytes[self.pos..].starts_with(b"true") {
                    self.pos += 4;
                    Ok(Value::Bool(true))
                } else {
                    self.pos += 5;
                    Ok(Value::Bool(false))
                }
            }
            Some(_) => self.parse_number(),
            None => Err(self.err("expected value, got end of input")),
        }
    }

    fn looks_like_bool(&self) -> bool {
        let rest = &self.bytes[self.pos..];
        for lit in [&b"true"[..], &b"false"[..]] {
            if rest.starts_with(lit) {
                // Not a prefix of a longer bare token.
                return !matches!(rest.get(lit.len()),
                    Some(c) if c.is_ascii_alphanumeric() || *c == b'_' || *c == b'-');
            }
        }
        false
    }

    fn parse_basic_string(&mut self) -> Result<String, Error> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') | Some(b'U') => {
                        let digits = if self.bytes[self.pos - 1] == b'u' {
                            4
                        } else {
                            8
                        };
                        let mut code = 0u32;
                        for _ in 0..digits {
                            let d = self
                                .bump()
                                .and_then(|c| (c as char).to_digit(16))
                                .ok_or_else(|| self.err("bad unicode escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode scalar"))?,
                        );
                    }
                    other => {
                        return Err(self.err(format_args!("unknown escape {other:?}")));
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a multi-byte UTF-8 scalar.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    for _ in 1..width {
                        self.bump();
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<String, Error> {
        debug_assert_eq!(self.peek(), Some(b'\''));
        self.bump();
        let start = self.pos;
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated literal string")),
                Some(b'\'') => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?
                        .to_string();
                    self.bump();
                    return Ok(s);
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.bump();
        let mut items = Vec::new();
        loop {
            self.skip_trivia(); // arrays may span lines
            match self.peek() {
                Some(b']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                None => return Err(self.err("unterminated array")),
                _ => {
                    items.push(self.parse_value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b']') => {}
                        other => {
                            return Err(self.err(format_args!("expected ',' or ']', got {other:?}")))
                        }
                    }
                }
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, Error> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.bump();
        let mut obj = Value::Object(Vec::new());
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let path = self.parse_key_path()?;
            self.skip_ws();
            if self.bump() != Some(b'=') {
                return Err(self.err("expected '=' in inline table"));
            }
            self.skip_ws();
            let value = self.parse_value()?;
            insert(&mut obj, &path, value).map_err(|m| self.err(m))?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(obj),
                other => return Err(self.err(format_args!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(self.peek(),
            Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'+' | b'-' | b'.' | b'_'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let clean: String = raw.chars().filter(|&c| c != '_').collect();
        let (sign_neg, body) = match clean.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, clean.strip_prefix('+').unwrap_or(&clean)),
        };
        if body == "inf" {
            return Ok(Value::F64(if sign_neg {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }));
        }
        if body == "nan" {
            return Ok(Value::F64(f64::NAN));
        }
        let is_float = body.contains('.') || body.contains('e') || body.contains('E');
        if is_float {
            clean
                .parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err(format_args!("invalid float {raw:?}")))
        } else if sign_neg {
            clean
                .parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err(format_args!("invalid integer {raw:?}")))
        } else {
            body.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err(format_args!("invalid integer {raw:?}")))
        }
    }
}

/// Walks (creating as needed) to the table at `path`, returning an error
/// on type conflicts. `explicit` marks a `[header]` definition, which may
/// open a fresh table or re-enter one created implicitly by a longer
/// path, but must not redefine a key holding a non-table value.
fn open_table<'v>(
    root: &'v mut Value,
    path: &[String],
    explicit: bool,
) -> Result<&'v mut Value, String> {
    let _ = explicit;
    let mut node = root;
    for (i, key) in path.iter().enumerate() {
        // If the current node is an array of tables, descend into its
        // last element (TOML: `[a.b]` under `[[a]]` extends the last `a`).
        if let Value::Array(items) = node {
            node = items
                .last_mut()
                .ok_or_else(|| format!("array of tables {:?} is empty", &path[..i]))?;
        }
        let entries = match node {
            Value::Object(entries) => entries,
            _ => return Err(format!("key {:?} is not a table", &path[..i])),
        };
        if !entries.iter().any(|(k, _)| k == key) {
            entries.push((key.clone(), Value::Object(Vec::new())));
        }
        let idx = entries
            .iter()
            .position(|(k, _)| k == key)
            .expect("just ensured");
        node = &mut entries[idx].1;
    }
    if let Value::Array(items) = node {
        node = items
            .last_mut()
            .ok_or_else(|| format!("array of tables {path:?} is empty"))?;
    }
    match node {
        Value::Object(_) => Ok(node),
        _ => Err(format!("cannot open table at {path:?}: key holds a value")),
    }
}

/// Appends a fresh table to the array-of-tables at `path`.
fn push_array_table(root: &mut Value, path: &[String]) -> Result<(), String> {
    let (last, parent_path) = path.split_last().expect("header path is non-empty");
    let parent = open_table(root, parent_path, false)?;
    let entries = match parent {
        Value::Object(entries) => entries,
        _ => unreachable!("open_table returns objects"),
    };
    match entries.iter_mut().find(|(k, _)| k == last) {
        Some((_, Value::Array(items))) => {
            items.push(Value::Object(Vec::new()));
            Ok(())
        }
        Some(_) => Err(format!("key {last:?} already holds a non-array value")),
        None => {
            entries.push((last.clone(), Value::Array(vec![Value::Object(Vec::new())])));
            Ok(())
        }
    }
}

/// Inserts `value` at the (possibly dotted) `path`, erroring on duplicates.
fn insert(root: &mut Value, path: &[String], value: Value) -> Result<(), String> {
    let (last, parent_path) = path.split_last().expect("key path is non-empty");
    let parent = open_table(root, parent_path, false)?;
    let entries = match parent {
        Value::Object(entries) => entries,
        _ => unreachable!("open_table returns objects"),
    };
    if entries.iter().any(|(k, _)| k == last) {
        return Err(format!("duplicate key {last:?}"));
    }
    entries.push((last.clone(), value));
    Ok(())
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn is_bare_key(k: &str) -> bool {
    !k.is_empty()
        && k.bytes()
            .all(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
}

fn emit_key(k: &str, out: &mut String) {
    if is_bare_key(k) {
        out.push_str(k);
    } else {
        emit_string(k, out);
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit_float(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("nan");
    } else if f == f64::INFINITY {
        out.push_str("inf");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-inf");
    } else {
        // `{:?}` is the shortest representation that round-trips; it
        // always contains '.' or 'e', both of which mark a TOML float.
        let s = format!("{f:?}");
        debug_assert!(s.contains('.') || s.contains('e') || s.contains('E'));
        out.push_str(&s);
    }
}

/// Emits a value in inline position (scalar, array, or inline table).
fn emit_inline(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => Err(Error::msg("TOML cannot represent null in this position")),
        Value::Bool(b) => {
            out.push_str(if *b { "true" } else { "false" });
            Ok(())
        }
        Value::U64(n) => {
            out.push_str(&n.to_string());
            Ok(())
        }
        Value::I64(n) => {
            out.push_str(&n.to_string());
            Ok(())
        }
        Value::F64(f) => {
            emit_float(*f, out);
            Ok(())
        }
        Value::Str(s) => {
            emit_string(s, out);
            Ok(())
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_inline(item, out)?;
            }
            out.push(']');
            Ok(())
        }
        Value::Object(entries) => {
            out.push('{');
            let mut first = true;
            for (k, v) in entries {
                if matches!(v, Value::Null) {
                    continue; // omitted Option::None
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                emit_key(k, out);
                out.push_str(" = ");
                emit_inline(v, out)?;
            }
            out.push('}');
            Ok(())
        }
    }
}

/// True when a value should become a `[section]` (a table whose
/// representation is nicer as a block than inline). Objects with at
/// most one live entry — notably the single-key enum-variant encoding —
/// stay inline (`noise = { LogNormal = { sigma = 0.3 } }`).
fn is_section(v: &Value) -> bool {
    match v {
        Value::Object(entries) => {
            entries
                .iter()
                .filter(|(_, v)| !matches!(v, Value::Null))
                .count()
                > 1
        }
        _ => false,
    }
}

/// True for arrays where every element is a table (emitted as `[[name]]`).
fn is_table_array(v: &Value) -> bool {
    match v {
        Value::Array(items) => {
            !items.is_empty() && items.iter().all(|i| matches!(i, Value::Object(_)))
        }
        _ => false,
    }
}

/// Emits `table` (which must be an object) at the header path `path`.
fn emit_table(table: &Value, path: &mut Vec<String>, out: &mut String) -> Result<(), Error> {
    let entries = match table {
        Value::Object(entries) => entries,
        other => {
            return Err(Error::msg(format_args!(
                "TOML documents must be tables, got {other:?}"
            )))
        }
    };
    // Pass 1: inline-representable pairs (so they bind to this header).
    for (k, v) in entries {
        if matches!(v, Value::Null) || is_section(v) || is_table_array(v) {
            continue;
        }
        emit_key(k, out);
        out.push_str(" = ");
        emit_inline(v, out)?;
        out.push('\n');
    }
    // Pass 2: nested tables and arrays of tables as sections.
    for (k, v) in entries {
        if matches!(v, Value::Null) {
            continue;
        }
        if is_table_array(v) {
            let items = match v {
                Value::Array(items) => items,
                _ => unreachable!(),
            };
            path.push(k.clone());
            for item in items {
                out.push_str("\n[[");
                emit_path(path, out);
                out.push_str("]]\n");
                emit_table(item, path, out)?;
            }
            path.pop();
        } else if is_section(v) {
            path.push(k.clone());
            out.push_str("\n[");
            emit_path(path, out);
            out.push_str("]\n");
            emit_table(v, path, out)?;
            path.pop();
        }
    }
    Ok(())
}

fn emit_path(path: &[String], out: &mut String) {
    for (i, seg) in path.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        emit_key(seg, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn parse(s: &str) -> Value {
        Parser::new(s).parse_document().expect("parse")
    }

    #[test]
    fn scalars_and_tables() {
        let v = parse(
            "title = \"spec\"\ncount = 42\nneg = -3\nload = 0.7\nflag = true\n\n\
             [cluster]\nservers = 9\nspeed = [1.0, 0.5]\n\n\
             [cluster.latency]\nConstant = { delay_ns = 50000 }\n",
        );
        assert_eq!(v.get("title"), Some(&Value::Str("spec".into())));
        assert_eq!(v.get("count"), Some(&Value::U64(42)));
        assert_eq!(v.get("neg"), Some(&Value::I64(-3)));
        assert_eq!(v.get("load"), Some(&Value::F64(0.7)));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        let cluster = v.get("cluster").unwrap();
        assert_eq!(cluster.get("servers"), Some(&Value::U64(9)));
        let lat = cluster.get("latency").unwrap().get("Constant").unwrap();
        assert_eq!(lat.get("delay_ns"), Some(&Value::U64(50_000)));
    }

    #[test]
    fn arrays_of_tables_and_multiline_arrays() {
        let v = parse(
            "[[faults.degraded]]\nserver = 0\nspeed = 0.5\n\n\
             [[faults.degraded]]\nserver = 3\nspeed = 0.25\n\n\
             [sweep]\nload = [\n  0.5,\n  0.7, # comment\n  0.9,\n]\n",
        );
        let degraded = v.get("faults").unwrap().get("degraded").unwrap();
        match degraded {
            Value::Array(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].get("server"), Some(&Value::U64(3)));
                assert_eq!(items[1].get("speed"), Some(&Value::F64(0.25)));
            }
            other => panic!("expected array, got {other:?}"),
        }
        let loads = v.get("sweep").unwrap().get("load").unwrap();
        assert_eq!(
            loads,
            &Value::Array(vec![Value::F64(0.5), Value::F64(0.7), Value::F64(0.9)])
        );
    }

    #[test]
    fn strings_escapes_comments() {
        let v = parse(
            "# header comment\na = \"two\\nlines \\u00e9\" # trailing\nb = 'raw\\n'\n\"key with space\" = 1\n",
        );
        assert_eq!(v.get("a"), Some(&Value::Str("two\nlines é".into())));
        assert_eq!(v.get("b"), Some(&Value::Str("raw\\n".into())));
        assert_eq!(v.get("key with space"), Some(&Value::U64(1)));
    }

    #[test]
    fn special_floats_and_underscores() {
        let v = parse("a = inf\nb = -inf\nc = nan\nd = 1_000_000\ne = 1e3\n");
        assert_eq!(v.get("a"), Some(&Value::F64(f64::INFINITY)));
        assert_eq!(v.get("b"), Some(&Value::F64(f64::NEG_INFINITY)));
        match v.get("c") {
            Some(Value::F64(f)) => assert!(f.is_nan()),
            other => panic!("expected nan, got {other:?}"),
        }
        assert_eq!(v.get("d"), Some(&Value::U64(1_000_000)));
        assert_eq!(v.get("e"), Some(&Value::F64(1e3)));
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(Parser::new("a = 1\na = 2\n").parse_document().is_err());
        assert!(Parser::new("a = {b = 1, b = 2}\n")
            .parse_document()
            .is_err());
    }

    #[test]
    fn emit_parse_round_trip() {
        let doc = parse(
            "name = \"x\"\nload = 0.7\nbig = 1e300\nneg = -7\n\n[cluster]\nservers = 9\n\
             factors = [1.0, 0.5]\nlatency = { Spiky = { base_ns = 50000, p_spike = 0.01 } }\n\n\
             [[cells]]\nid = 0\n\n[[cells]]\nid = 1\n",
        );
        let emitted = to_string(&doc).unwrap();
        let back = parse(&emitted);
        assert_eq!(doc, back, "emitted TOML:\n{emitted}");
    }

    #[test]
    fn nulls_are_omitted_in_tables_and_rejected_in_arrays() {
        let doc = Value::Object(vec![
            ("present".into(), Value::U64(1)),
            ("absent".into(), Value::Null),
        ]);
        let s = to_string(&doc).unwrap();
        assert!(!s.contains("absent"));
        let arr = Value::Object(vec![("xs".into(), Value::Array(vec![Value::Null]))]);
        assert!(to_string(&arr).is_err());
    }

    #[test]
    fn inline_table_values_round_trip() {
        // Unit enum variants are strings; data-carrying variants are
        // single-key tables — both appear inside strategy arrays.
        let doc = parse("strategies = [{ Credits = { policy = \"EqualMax\" } }, \"Fifo\"]\n");
        let emitted = to_string(&doc).unwrap();
        assert_eq!(parse(&emitted), doc);
    }
}
