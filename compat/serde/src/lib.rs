//! Minimal offline stand-in for `serde`: a value-tree data model with
//! `Serialize`/`Deserialize` traits and (via the `derive` feature) the
//! matching derive macros. The observable JSON behaviour mirrors real
//! serde where this workspace depends on it: structs are objects, unit
//! enum variants are strings, data-carrying variants are
//! single-key objects, newtype structs are transparent, and missing
//! `Option` fields deserialize to `None`.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both traits convert through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order (deterministic output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A deserialization error (serialization is infallible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the value tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the value tree.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent; `None` means the
    /// absence is an error. Overridden by `Option` (absent → `None`),
    /// matching real serde's behaviour.
    fn missing_field() -> Option<Self> {
        None
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => {
                        return Err(Error::msg(format_args!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format_args!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) if x <= i64::MAX as u64 => x as i64,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(Error::msg(format_args!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format_args!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(x) => Ok(x as $t),
                    Value::I64(x) => Ok(x as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes NaN as null
                    ref other => Err(Error::msg(format_args!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format_args!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format_args!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn missing_field() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format_args!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($idx),+].len();
                        if items.len() != expect {
                            return Err(Error::msg(format_args!(
                                "expected {expect}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format_args!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support routines for the derive macros. Not a stable API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Views a value as an object's entry list.
    pub fn as_object<'v>(v: &'v Value, what: &str) -> Result<&'v [(String, Value)], Error> {
        match v {
            Value::Object(entries) => Ok(entries),
            other => Err(Error::msg(format_args!(
                "expected object for {what}, got {other:?}"
            ))),
        }
    }

    /// Views a value as an array of `n` elements.
    pub fn as_array<'v>(v: &'v Value, n: usize, what: &str) -> Result<&'v [Value], Error> {
        match v {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(Error::msg(format_args!(
                "expected {n} elements for {what}, got {}",
                items.len()
            ))),
            other => Err(Error::msg(format_args!(
                "expected array for {what}, got {other:?}"
            ))),
        }
    }

    /// Extracts a struct field; absent fields fall back to the type's
    /// `missing_field` rule (`Option` → `None`, everything else errors).
    pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => {
                T::missing_field().ok_or_else(|| Error::msg(format_args!("missing field {name}")))
            }
        }
    }

    /// Extracts a `#[serde(default)]` struct field.
    pub fn field_default<T: Deserialize + Default>(
        obj: &[(String, Value)],
        name: &str,
    ) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Ok(T::default()),
        }
    }

    /// Splits an enum value into `(variant_name, payload)`: a bare string
    /// is a unit variant; a single-key object carries a payload.
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
        match v {
            Value::Str(s) => Ok((s, None)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((&entries[0].0, Some(&entries[0].1)))
            }
            other => Err(Error::msg(format_args!(
                "expected enum (string or single-key object), got {other:?}"
            ))),
        }
    }

    /// The payload a data-carrying variant must have.
    pub fn payload<'v>(p: Option<&'v Value>, variant: &str) -> Result<&'v Value, Error> {
        p.ok_or_else(|| Error::msg(format_args!("variant {variant} expects a payload")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        let v: Vec<u32> = Vec::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (u16, f64) = Deserialize::from_value(&(7u16, 0.5f64).to_value()).unwrap();
        assert_eq!(t, (7, 0.5));
    }

    #[test]
    fn option_missing_field_is_none() {
        let obj = [("present".to_string(), Value::U64(1))];
        let absent: Option<u64> = __private::field(&obj, "absent").unwrap();
        assert_eq!(absent, None);
        let present: Option<u64> = __private::field(&obj, "present").unwrap();
        assert_eq!(present, Some(1));
        let err: Result<u64, _> = __private::field(&obj, "absent");
        assert!(err.is_err());
    }
}
