//! Minimal offline stand-in for `criterion`: a wall-clock micro-benchmark
//! harness with criterion's macro/builder surface. Results print as
//! `name ... time: X ns/iter (Y elem/s)` — no statistics engine, but the
//! timing loop calibrates iteration counts the same way.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Element/byte throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Work items per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring enough
    /// iterations for a stable per-iteration estimate.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run for ~20ms (or up to sample_size heavy iterations).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1_000_000 {
            black_box(routine());
            warm_iters += 1;
        }
        let per = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Measure: aim for ~100ms of work, capped for slow routines.
        let target = (100_000_000.0 / per.max(1.0)) as u64;
        let iters = target
            .clamp(1, 10_000_000)
            .max(self.sample_size as u64 / 10);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.3} Melem/s)", n as f64 * 1e3 / b.ns_per_iter)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                " ({:.3} MiB/s)",
                n as f64 * 1e9 / b.ns_per_iter / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{name:<40} time: {:>12.1} ns/iter{rate}", b.ns_per_iter);
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            sample_size: 100,
        };
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }

    /// Accepts criterion's CLI configuration entry point (no-op here).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the target sample count (used only to scale slow benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
